// Package selection implements the paper's replica selection algorithm
// (Algorithm 1, §5.3.2) together with the generalizations sketched in the
// paper and the single-replica baselines it compares against conceptually
// (§1, §7).
//
// Algorithm 1 sorts replicas by decreasing F_Ri(t), reserves the
// highest-probability replica m0, and grows a candidate set X from the rest
// until P_X(t) ≥ Pc(t) (Equation 1). The returned set K = X ∪ {m0} then
// meets the client's probabilistic deadline even if any single member of K
// crashes (Equation 3). If no such X exists, the full replica set M is
// returned.
package selection

import (
	"fmt"
	"sort"

	"aqua/internal/model"
	"aqua/internal/repository"
	"aqua/internal/stats"
	"aqua/internal/wire"
)

// Input is what a strategy selects from: the predicted probability table for
// replicas with measurement history, the replicas still lacking history
// (cold), and the client's QoS specification.
type Input struct {
	// Table holds F_Ri(t) per warm replica; t already includes overhead
	// compensation when enabled.
	Table []model.ReplicaProbability
	// Cold lists replicas with no usable history. The dynamic strategy
	// always includes them so they get probed and start publishing
	// performance updates (the paper's cold-start rule generalized to
	// per-replica granularity).
	Cold []repository.ReplicaSnapshot
	// QoS carries the deadline t and required probability Pc(t).
	QoS wire.QoS
	// Sorted, when non-nil, is Table already ordered by decreasing
	// probability with ties broken by ascending replica ID — e.g. by the
	// scheduler's incrementally maintained Order — and strategies skip their
	// own sort. It must hold exactly Table's rows; callers own the invariant.
	Sorted []model.ReplicaProbability
	// SelectedBuf, when non-nil, is a caller-owned scratch buffer (used from
	// length zero) that strategies may return as Result.Selected, avoiding a
	// per-decision allocation. A caller that reuses the buffer must copy
	// Result.Selected out before its next Select.
	SelectedBuf []wire.ReplicaID
	// LiveInFlight, when HasLiveInFlight is set, is the total local
	// in-flight dispatch count across the listed replicas measured at
	// decision time. Load-conditioned strategies prefer it over summing the
	// snapshots' InFlight fields, which may be generation-cached and lag the
	// live counters by one performance report.
	LiveInFlight    int
	HasLiveInFlight bool
	// Controller, when non-nil, replaces Budgeted's static load→budget
	// interpolation with an online set-point search (core.AdaptiveBudget):
	// the strategy hands it the measured per-replica outstanding level and
	// lets it pick the |K| budget, clamped to the strategy's [MinK, MaxK].
	Controller BudgetController
}

// BudgetController is an online redundancy controller: given the measured
// per-replica outstanding-work level and the pool size, it returns the |K|
// budget to apply to this decision. Implementations live above this package
// (core.AdaptiveBudget); the interface keeps selection free of a dependency
// on the controller's state machine.
type BudgetController interface {
	BudgetFor(perReplicaOutstanding float64, n int) int
}

// sortedView returns the probability-descending view of the input table,
// reusing the caller-provided order when present.
func sortedView(in Input) []model.ReplicaProbability {
	if in.Sorted != nil {
		return in.Sorted
	}
	return sortTable(in.Table)
}

// Result is a selection decision.
type Result struct {
	// Selected is the chosen subset K, deterministic order.
	Selected []wire.ReplicaID
	// Predicted is P_K(t) per Equation 1 over the warm members of K (cold
	// members contribute unknown probability and are excluded from the
	// estimate).
	Predicted float64
	// UsedAll reports that the strategy fell back to the complete replica
	// set M because no proper subset satisfied the QoS.
	UsedAll bool
	// ColdStart reports that the decision was dominated by missing history.
	ColdStart bool
	// Budget is the load-conditioned redundancy cap that bounded |K| for
	// this decision, when the strategy applies one (selection.Budgeted);
	// zero means unbounded.
	Budget int
	// Capped reports that the budget truncated a set the underlying
	// algorithm would otherwise have grown larger.
	Capped bool
}

// Strategy chooses a replica subset for one request.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Select returns the replicas to which the request will be multicast.
	// The returned set is non-empty whenever the input contains at least
	// one replica.
	Select(in Input) Result
}

// replicaIDs extracts IDs from a probability table.
func replicaIDs(table []model.ReplicaProbability) []wire.ReplicaID {
	return appendTableIDs(make([]wire.ReplicaID, 0, len(table)), table)
}

// coldIDs extracts IDs from cold snapshots.
func coldIDs(cold []repository.ReplicaSnapshot) []wire.ReplicaID {
	return appendColdIDs(make([]wire.ReplicaID, 0, len(cold)), cold)
}

// appendTableIDs appends each row's ID to ids.
func appendTableIDs(ids []wire.ReplicaID, table []model.ReplicaProbability) []wire.ReplicaID {
	for i := range table {
		ids = append(ids, table[i].Snapshot.ID)
	}
	return ids
}

// appendColdIDs appends each cold snapshot's ID to ids.
func appendColdIDs(ids []wire.ReplicaID, cold []repository.ReplicaSnapshot) []wire.ReplicaID {
	for i := range cold {
		ids = append(ids, cold[i].ID)
	}
	return ids
}

// candidateIDs collects every candidate (warm then cold) into buf and sorts
// ascending by ID. The repository emits snapshots in ascending ID order, so
// this equals repository order — the deterministic, score-free ordering the
// baseline strategies (All, Random, RoundRobin) share. It replaces three
// previously duplicated sort.Slice blocks.
func candidateIDs(in Input, buf []wire.ReplicaID) []wire.ReplicaID {
	ids := appendTableIDs(buf, in.Table)
	ids = appendColdIDs(ids, in.Cold)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortTable orders a copy of the table by decreasing probability, breaking
// ties by ascending replica ID so runs are deterministic. Because the
// repository emits snapshots sorted by ID, the ID tiebreak is exactly
// "repository order" for equal-score replicas — the stable-tiebreak
// requirement of the paper's ranking (equal F_Ri(t) must not reshuffle
// between requests).
func sortTable(table []model.ReplicaProbability) []model.ReplicaProbability {
	sorted := make([]model.ReplicaProbability, len(table))
	copy(sorted, table)
	sort.SliceStable(sorted, func(i, j int) bool {
		return rowLess(&sorted[i], &sorted[j])
	})
	return sorted
}

// subsetProb applies Equation 1 to the listed table rows without
// materializing a probability slice (see model.SubsetProbability).
func subsetProb(rows []model.ReplicaProbability) float64 {
	failAll := 1.0
	for i := range rows {
		g := 1 - rows[i].Probability
		if g < 0 {
			g = 0
		}
		failAll *= g
	}
	return 1 - failAll
}

// headRestProb is subsetProb over the concatenation head ++ rest without
// materializing it. The multiply order matches subsetProb exactly, so the
// result is bit-identical to subsetProb(append(head, rest...)).
func headRestProb(head, rest []model.ReplicaProbability) float64 {
	failAll := 1.0
	for i := range head {
		g := 1 - head[i].Probability
		if g < 0 {
			g = 0
		}
		failAll *= g
	}
	for i := range rest {
		g := 1 - rest[i].Probability
		if g < 0 {
			g = 0
		}
		failAll *= g
	}
	return 1 - failAll
}

// Dynamic is the paper's Algorithm 1 generalized to reserve the top
// Failures replicas (Failures=1 reproduces the paper exactly; the paper
// notes the multi-failure extension in §5.3.2). With Reserve=false the
// algorithm keeps no crash reserve and can return a single replica — the A4
// ablation.
type Dynamic struct {
	// Failures is the number of simultaneous replica crashes the selected
	// set must tolerate. The paper's algorithm uses 1.
	Failures int
	// Reserve controls whether the crash reserve is kept at all. False
	// disables fault tolerance (ablation); Failures is then ignored.
	Reserve bool
	// Cap, when positive, bounds |K|: when no subset satisfies Pc(t), the
	// algorithm returns the best Cap replicas instead of all of M. The
	// paper's line-15 fallback amplifies overload (ablation A12); the cap
	// is the overload-safe variant.
	Cap int
}

var _ Strategy = (*Dynamic)(nil)

// NewDynamic returns the paper's Algorithm 1 (single-crash reserve).
func NewDynamic() *Dynamic { return &Dynamic{Failures: 1, Reserve: true} }

// NewDynamicMulti returns the f-failure generalization.
func NewDynamicMulti(f int) *Dynamic { return &Dynamic{Failures: f, Reserve: true} }

// NewDynamicNoReserve returns the variant without the m0 crash reserve.
func NewDynamicNoReserve() *Dynamic { return &Dynamic{Reserve: false} }

// NewDynamicCapped returns Algorithm 1 with the fallback capped at maxK
// replicas instead of all of M.
func NewDynamicCapped(maxK int) *Dynamic {
	return &Dynamic{Failures: 1, Reserve: true, Cap: maxK}
}

// Name implements Strategy.
func (d *Dynamic) Name() string {
	if !d.Reserve {
		return "dynamic-noreserve"
	}
	name := "dynamic"
	if d.Failures > 1 {
		name = fmt.Sprintf("dynamic-f%d", d.Failures)
	}
	if d.Cap > 0 {
		name = fmt.Sprintf("%s-cap%d", name, d.Cap)
	}
	return name
}

// Select implements Algorithm 1. Cold replicas are always included (forced
// probing); if every replica is cold this degenerates to the paper's
// first-access rule of selecting all of M.
func (d *Dynamic) Select(in Input) Result {
	forced := coldIDs(in.Cold)
	if len(in.Table) == 0 {
		return Result{Selected: forced, Predicted: 0, UsedAll: true, ColdStart: true}
	}
	sorted := sortedView(in)

	reserve := 0
	if d.Reserve {
		reserve = d.Failures
		if reserve < 1 {
			reserve = 1
		}
		if reserve > len(sorted) {
			reserve = len(sorted)
		}
	}
	head := sorted[:reserve] // the m0 … m_{f-1} crash reserve
	rest := sorted[reserve:]

	// Grow X from the remaining replicas, in sorted order, until Equation 1
	// meets Pc(t) without counting the reserve (Algorithm 1 lines 6-14).
	prod := 1.0
	for i := range rest {
		g := 1 - rest[i].Probability
		if g < 0 {
			g = 0
		}
		prod *= g
		if 1-prod >= in.QoS.MinProbability {
			x := rest[:i+1]
			selected := appendTableIDs(in.SelectedBuf[:0], head)
			selected = appendTableIDs(selected, x)
			selected = append(selected, forced...)
			return Result{
				Selected:  selected,
				Predicted: headRestProb(head, x),
				ColdStart: len(forced) > 0,
			}
		}
		if d.Cap > 0 && reserve+i+1 >= d.Cap {
			break // capped: stop growing X even though Pc is unmet
		}
	}
	// No acceptable subset: return the complete replica set M (line 15), or
	// the best Cap replicas when the overload-safe cap is configured.
	fallback := sorted
	if d.Cap > 0 && d.Cap < len(sorted) {
		fallback = sorted[:d.Cap]
	}
	all := append(appendTableIDs(in.SelectedBuf[:0], fallback), forced...)
	return Result{
		Selected:  all,
		Predicted: subsetProb(fallback),
		UsedAll:   true,
		ColdStart: len(forced) > 0,
	}
}

// Budget-derivation defaults: the per-replica outstanding-work level (the
// mean of replica-reported queue length plus this gateway's own unsettled
// dispatches) at or below which the budget stays at its ceiling, and at or
// above which it drops to its floor. Between the two the budget interpolates
// linearly, so the redundancy ramps down smoothly as the pool saturates
// instead of flipping at a single threshold.
const (
	DefaultBudgetLowLoad  = 1.0
	DefaultBudgetHighLoad = 4.0
)

// MinBudget is the smallest redundancy budget Budgeted will apply: the m0
// crash reserve plus one working member, so Equation 3's single-crash
// guarantee holds within the budget even at the floor.
const MinBudget = 2

// Budgeted wraps Algorithm 1 with a load-conditioned redundancy budget: the
// cap on |K| shrinks from MaxK (default |M|) toward MinK (default 2) as the
// replicas' outstanding work grows. Below the LowLoad threshold it is exactly
// the paper's algorithm; past HighLoad it degrades to the m0 reserve plus the
// best remaining replica instead of amplifying an already-overloaded pool
// with the select-all fallback (the A12 cliff). The budget is derived purely
// from the repository snapshot the strategy already receives — per-replica
// queue lengths and the gateway's own in-flight counts — so no extra
// coordination or clock is needed and decisions stay deterministic.
type Budgeted struct {
	// Inner is the capped algorithm; nil means NewDynamic().
	Inner *Dynamic
	// MinK is the budget floor; values below MinBudget (or 0) mean MinBudget
	// so the Eq. 3 reserve survives the harshest budget.
	MinK int
	// MaxK is the budget ceiling; 0 means the full replica set.
	MaxK int
	// LowLoad and HighLoad bound the per-replica outstanding-work ramp;
	// zero values mean the package defaults.
	LowLoad, HighLoad float64
}

var _ Strategy = (*Budgeted)(nil)

// NewBudgeted returns Algorithm 1 under the default load-conditioned budget.
func NewBudgeted() *Budgeted { return &Budgeted{Inner: NewDynamic()} }

// Name implements Strategy.
func (b *Budgeted) Name() string {
	inner := b.Inner
	if inner == nil {
		inner = NewDynamic()
	}
	return "budgeted-" + inner.Name()
}

// BudgetFor computes the redundancy budget for one input: the per-replica
// mean of (reported queue length + local in-flight) interpolated between the
// ceiling at LowLoad and the floor at HighLoad — or, when in.Controller is
// set, whatever the online controller picks for that load level, clamped to
// [MinK, MaxK].
func (b *Budgeted) BudgetFor(in Input) int {
	n := len(in.Table) + len(in.Cold)
	maxK := b.MaxK
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	minK := b.MinK
	if minK < MinBudget {
		minK = MinBudget
	}
	if minK > maxK {
		minK = maxK
	}
	if n == 0 {
		return MinBudget
	}
	low, high := b.LowLoad, b.HighLoad
	if low <= 0 {
		low = DefaultBudgetLowLoad
	}
	if high <= low {
		high = low + (DefaultBudgetHighLoad - DefaultBudgetLowLoad)
	}
	var outstanding float64
	for _, rp := range in.Table {
		outstanding += float64(rp.Snapshot.QueueLength)
	}
	for _, s := range in.Cold {
		outstanding += float64(s.QueueLength)
	}
	if in.HasLiveInFlight {
		outstanding += float64(in.LiveInFlight)
	} else {
		for _, rp := range in.Table {
			outstanding += float64(rp.Snapshot.InFlight)
		}
		for _, s := range in.Cold {
			outstanding += float64(s.InFlight)
		}
	}
	load := outstanding / float64(n)
	if in.Controller != nil {
		budget := in.Controller.BudgetFor(load, n)
		if budget < minK {
			budget = minK
		}
		if budget > maxK {
			budget = maxK
		}
		return budget
	}
	switch {
	case load <= low:
		return maxK
	case load >= high:
		return minK
	default:
		frac := (load - low) / (high - low)
		budget := maxK - int(frac*float64(maxK-minK))
		if budget < minK {
			budget = minK
		}
		return budget
	}
}

// Select implements Strategy: Algorithm 1 with its growth and fallback both
// bounded by the computed budget. Forced cold members count against the
// budget too (and are dropped first), so |K| never exceeds it — under
// overload a cold-probe flood would amplify load exactly like the select-all
// fallback does. Within the budget, UsedAll means "Pc(t) unreachable within
// the budget", not necessarily unreachable outright.
func (b *Budgeted) Select(in Input) Result {
	budget := b.BudgetFor(in)
	inner := b.Inner
	if inner == nil {
		inner = NewDynamic()
	}
	capped := *inner
	if capped.Cap <= 0 || capped.Cap > budget {
		capped.Cap = budget
	}
	res := capped.Select(in)
	if len(res.Selected) > capped.Cap {
		// Only the forced-cold tail can exceed the inner cap; trimming it
		// keeps the warm head (reserve first) intact, so Predicted — which
		// counts only warm members — is unchanged.
		warmSel := len(res.Selected) - len(in.Cold)
		res.Selected = res.Selected[:capped.Cap]
		res.Capped = true
		if warmSel >= capped.Cap && len(in.Cold) > 0 {
			// The trim cut every forced-cold probe. Without a probe a
			// replica that saturated once keeps its pessimistic window
			// forever and is never rediscovered after it drains — the pool
			// collapses onto whichever members happen to have fresh data.
			// Sacrifice the worst warm slot for one cold probe: |K| stays
			// within the budget, the m0 reserve stays at the head, and the
			// probe is still a working member — only its timeliness is
			// unknown, which is exactly why it must be measured.
			res.Selected[capped.Cap-1] = in.Cold[0].ID
			res.Predicted = subsetProb(sortedView(in)[:capped.Cap-1])
			res.ColdStart = true
		}
	}
	if res.UsedAll && capped.Cap < len(in.Table)+len(in.Cold) {
		res.Capped = true
	}
	res.Budget = budget
	return res
}

// SingleBest picks only the replica with the highest F_Ri(t): the
// lowest-expected-response-time family of selection algorithms the paper
// contrasts with (nearest replica, best historical mean, probing). It has
// no crash protection.
type SingleBest struct{}

var _ Strategy = SingleBest{}

// Name implements Strategy.
func (SingleBest) Name() string { return "single-best" }

// Select implements Strategy.
func (SingleBest) Select(in Input) Result {
	if len(in.Table) == 0 {
		forced := coldIDs(in.Cold)
		return Result{Selected: forced, UsedAll: true, ColdStart: true}
	}
	sorted := sortedView(in)
	best := sorted[0]
	return Result{
		Selected:  append(in.SelectedBuf[:0], best.Snapshot.ID),
		Predicted: best.Probability,
	}
}

// FixedK picks the top-K replicas by F_Ri(t): static redundancy without the
// QoS-driven adaptivity.
type FixedK struct {
	K int
}

var _ Strategy = FixedK{}

// Name implements Strategy.
func (f FixedK) Name() string { return fmt.Sprintf("fixed-%d", f.K) }

// Select implements Strategy.
func (f FixedK) Select(in Input) Result {
	if len(in.Table) == 0 {
		return Result{Selected: coldIDs(in.Cold), UsedAll: true, ColdStart: true}
	}
	k := f.K
	if k < 1 {
		k = 1
	}
	if k > len(in.Table) {
		k = len(in.Table)
	}
	sorted := sortedView(in)[:k]
	return Result{Selected: appendTableIDs(in.SelectedBuf[:0], sorted), Predicted: subsetProb(sorted)}
}

// All multicasts every request to every replica: AQuA's active-replication
// behaviour, maximal fault tolerance with no scalability.
type All struct{}

var _ Strategy = All{}

// Name implements Strategy.
func (All) Name() string { return "all" }

// Select implements Strategy.
func (All) Select(in Input) Result {
	ids := candidateIDs(in, in.SelectedBuf[:0])
	return Result{Selected: ids, Predicted: subsetProb(in.Table), UsedAll: true}
}

// Random picks K replicas uniformly at random, the classic load-spreading
// baseline.
type Random struct {
	K   int
	rng *stats.Rand
}

var _ Strategy = (*Random)(nil)

// NewRandom returns a Random strategy with a deterministic seed.
func NewRandom(k int, seed int64) *Random {
	return &Random{K: k, rng: stats.NewRand(seed)}
}

// Name implements Strategy.
func (r *Random) Name() string { return fmt.Sprintf("random-%d", r.K) }

// Select implements Strategy.
func (r *Random) Select(in Input) Result {
	ids := candidateIDs(in, nil)
	if len(ids) == 0 {
		return Result{}
	}
	k := r.K
	if k < 1 {
		k = 1
	}
	if k > len(ids) {
		k = len(ids)
	}
	perm := r.rng.Perm(len(ids))
	chosen := make([]wire.ReplicaID, 0, k)
	chosenSet := make(map[wire.ReplicaID]bool, k)
	for _, idx := range perm[:k] {
		chosen = append(chosen, ids[idx])
		chosenSet[ids[idx]] = true
	}
	var rows []model.ReplicaProbability
	for _, rp := range in.Table {
		if chosenSet[rp.Snapshot.ID] {
			rows = append(rows, rp)
		}
	}
	return Result{Selected: chosen, Predicted: subsetProb(rows)}
}

// RoundRobin rotates through the replica list K at a time, the classic
// load-balancer baseline.
type RoundRobin struct {
	K    int
	next int
}

var _ Strategy = (*RoundRobin)(nil)

// NewRoundRobin returns a RoundRobin strategy selecting k replicas per
// request.
func NewRoundRobin(k int) *RoundRobin { return &RoundRobin{K: k} }

// Name implements Strategy.
func (r *RoundRobin) Name() string { return fmt.Sprintf("roundrobin-%d", r.K) }

// Select implements Strategy.
func (r *RoundRobin) Select(in Input) Result {
	ids := candidateIDs(in, nil)
	if len(ids) == 0 {
		return Result{}
	}
	k := r.K
	if k < 1 {
		k = 1
	}
	if k > len(ids) {
		k = len(ids)
	}
	chosen := make([]wire.ReplicaID, 0, k)
	chosenSet := make(map[wire.ReplicaID]bool, k)
	for i := 0; i < k; i++ {
		id := ids[(r.next+i)%len(ids)]
		chosen = append(chosen, id)
		chosenSet[id] = true
	}
	r.next = (r.next + k) % len(ids)
	var rows []model.ReplicaProbability
	for _, rp := range in.Table {
		if chosenSet[rp.Snapshot.ID] {
			rows = append(rows, rp)
		}
	}
	return Result{Selected: chosen, Predicted: subsetProb(rows)}
}
