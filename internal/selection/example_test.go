package selection_test

import (
	"fmt"
	"time"

	"aqua/internal/model"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/wire"
)

// ExampleDynamic_Select reproduces Algorithm 1 on a hand-built probability
// table: replicas predicted at 0.9, 0.8, 0.5, and 0.2 for the client's
// deadline, with Pc = 0.8.
func ExampleDynamic_Select() {
	table := []model.ReplicaProbability{
		{Snapshot: repository.ReplicaSnapshot{ID: "r1", HasHistory: true}, Probability: 0.9},
		{Snapshot: repository.ReplicaSnapshot{ID: "r2", HasHistory: true}, Probability: 0.8},
		{Snapshot: repository.ReplicaSnapshot{ID: "r3", HasHistory: true}, Probability: 0.5},
		{Snapshot: repository.ReplicaSnapshot{ID: "r4", HasHistory: true}, Probability: 0.2},
	}
	algo := selection.NewDynamic()
	res := algo.Select(selection.Input{
		Table: table,
		QoS:   wire.QoS{Deadline: 100 * time.Millisecond, MinProbability: 0.8},
	})
	// r1 is the m0 crash reserve; X = {r2} already satisfies Pc = 0.8, so
	// K = {r1, r2} and the set tolerates either member crashing.
	fmt.Println("selected:", res.Selected)
	fmt.Printf("P_K(t) = %.3f\n", res.Predicted)
	// Output:
	// selected: [r1 r2]
	// P_K(t) = 0.980
}

// ExampleSubsetProbability evaluates the paper's Equation 1.
func ExampleSubsetProbability() {
	// Three replicas, each 50% likely to answer in time: at least one
	// timely response arrives with probability 1 - 0.5^3.
	p := model.SubsetProbability([]float64{0.5, 0.5, 0.5})
	fmt.Printf("%.3f\n", p)
	// Output:
	// 0.875
}
