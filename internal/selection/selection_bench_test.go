package selection

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/model"
	"aqua/internal/wire"
)

func benchTable(n int) []model.ReplicaProbability {
	table := make([]model.ReplicaProbability, n)
	for i := range table {
		table[i] = row(fmt.Sprintf("replica-%03d", i), 0.2+0.75*float64(i)/float64(n))
	}
	return table
}

// BenchmarkAlgorithm1 times the subset-selection phase alone, which the
// paper reports as ~10% of the per-request overhead.
func BenchmarkAlgorithm1(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := NewDynamic()
			in := Input{
				Table: benchTable(n),
				QoS:   wire.QoS{Deadline: 150 * time.Millisecond, MinProbability: 0.95},
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := d.Select(in)
				if len(res.Selected) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}

func BenchmarkStrategies(b *testing.B) {
	in := Input{
		Table: benchTable(16),
		QoS:   wire.QoS{Deadline: 150 * time.Millisecond, MinProbability: 0.9},
	}
	for _, s := range []Strategy{
		NewDynamic(), NewDynamicMulti(2), SingleBest{}, FixedK{K: 4}, All{},
		NewRandom(4, 1), NewRoundRobin(4),
	} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := s.Select(in)
				if len(res.Selected) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}
