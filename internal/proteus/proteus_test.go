package proteus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aqua/internal/group"
	"aqua/internal/wire"
)

func TestNewManagerValidation(t *testing.T) {
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) { return id, func() {}, nil }
	cases := []struct {
		name string
		p    Policy
	}{
		{"missing service", Policy{ReplicationLevel: 1, Factory: factory}},
		{"zero level", Policy{Service: "s", Factory: factory}},
		{"negative level", Policy{Service: "s", ReplicationLevel: -1, Factory: factory}},
		{"missing factory", Policy{Service: "s", ReplicationLevel: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewManager(tc.p); err == nil {
				t.Error("want error")
			}
		})
	}
}

// fakePool simulates replicas whose lifecycle the manager controls,
// feeding views back like a group observer would.
type fakePool struct {
	mu      sync.Mutex
	live    map[wire.ReplicaID]bool
	stopped []wire.ReplicaID
	viewNum uint64
	mgr     *Manager
}

func (p *fakePool) factory(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
	p.mu.Lock()
	p.live[id] = true
	p.mu.Unlock()
	p.pushView()
	return id, func() {
		p.mu.Lock()
		delete(p.live, id)
		p.stopped = append(p.stopped, id)
		p.mu.Unlock()
	}, nil
}

func (p *fakePool) crash(id wire.ReplicaID) {
	p.mu.Lock()
	delete(p.live, id)
	p.mu.Unlock()
	p.pushView()
}

func (p *fakePool) pushView() {
	p.mu.Lock()
	members := make([]wire.ReplicaID, 0, len(p.live))
	for id := range p.live {
		members = append(members, id)
	}
	p.viewNum++
	v := group.View{Number: p.viewNum, Members: members}
	mgr := p.mgr
	p.mu.Unlock()
	if mgr != nil {
		mgr.ObserveView(v)
	}
}

func (p *fakePool) liveCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for: %s", what)
}

func newManagedPool(t *testing.T, level int) (*fakePool, *Manager) {
	t.Helper()
	pool := &fakePool{live: make(map[wire.ReplicaID]bool)}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: level,
		Factory:          pool.factory,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.mgr = mgr
	t.Cleanup(mgr.Stop)
	return pool, mgr
}

func TestManagerBringsPoolToLevel(t *testing.T) {
	pool, mgr := newManagedPool(t, 3)
	mgr.Run()
	waitFor(t, time.Second, func() bool { return pool.liveCount() == 3 }, "pool reaches level 3")
	// Must not over-provision once at level.
	time.Sleep(30 * time.Millisecond)
	if got := pool.liveCount(); got != 3 {
		t.Errorf("live = %d, want exactly 3", got)
	}
	if got := mgr.StartedCount(); got != 3 {
		t.Errorf("StartedCount = %d, want 3", got)
	}
	if got := mgr.Level(); got != 3 {
		t.Errorf("Level = %d, want 3", got)
	}
}

func TestManagerReplacesCrashedReplica(t *testing.T) {
	pool, mgr := newManagedPool(t, 2)
	mgr.Run()
	waitFor(t, time.Second, func() bool { return pool.liveCount() == 2 }, "pool at level")

	// Crash one replica.
	pool.mu.Lock()
	var victim wire.ReplicaID
	for id := range pool.live {
		victim = id
		break
	}
	pool.mu.Unlock()
	pool.crash(victim)

	waitFor(t, time.Second, func() bool { return pool.liveCount() == 2 }, "pool restored after crash")
	if got := mgr.StartedCount(); got != 3 {
		t.Errorf("StartedCount = %d, want 3 (2 initial + 1 replacement)", got)
	}
}

func TestManagerStopStopsReplicas(t *testing.T) {
	pool, mgr := newManagedPool(t, 2)
	mgr.Run()
	waitFor(t, time.Second, func() bool { return pool.liveCount() == 2 }, "pool at level")
	mgr.Stop()
	pool.mu.Lock()
	stopped := len(pool.stopped)
	pool.mu.Unlock()
	if stopped != 2 {
		t.Errorf("stopped %d replicas on Stop, want 2", stopped)
	}
	mgr.Stop() // idempotent
}

func TestManagerFactoryFailureRetries(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	failing := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return "", nil, fmt.Errorf("transient failure %d", calls)
		}
		return id, func() {}, nil
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 1,
		Factory:          failing,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	mgr.Run()
	waitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls >= 3
	}, "factory retried after transient failures")
}

func TestDefaultCheckIntervalApplied(t *testing.T) {
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 1,
		Factory:          func(id wire.ReplicaID) (wire.ReplicaID, func(), error) { return id, func() {}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	if mgr.policy.CheckInterval != DefaultCheckInterval {
		t.Errorf("CheckInterval = %v", mgr.policy.CheckInterval)
	}
}

// TestReconcileAgesOutNeverJoinedReplica: a factory-started replica that
// never appears in a group view (wedged during startup) must not hold its
// pool slot forever. Before the fix the entry counted as live on every
// reconcile, so the pool ran below target permanently and the stop handle
// leaked.
func TestReconcileAgesOutNeverJoinedReplica(t *testing.T) {
	var mu sync.Mutex
	var stopped []wire.ReplicaID
	// Replicas start but never join: no view is ever pushed.
	wedged := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() {
			mu.Lock()
			stopped = append(stopped, id)
			mu.Unlock()
		}, nil
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 2,
		Factory:          wedged,
		CheckInterval:    5 * time.Millisecond,
		JoinTimeout:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile()
	if got := mgr.StartedCount(); got != 2 {
		t.Fatalf("StartedCount = %d, want 2", got)
	}
	// Pending joins hold their slots: no over-provisioning meanwhile.
	mgr.reconcile()
	if got := mgr.StartedCount(); got != 2 {
		t.Fatalf("StartedCount before timeout = %d, want still 2", got)
	}

	time.Sleep(15 * time.Millisecond)
	mgr.reconcile()
	mu.Lock()
	retired := len(stopped)
	mu.Unlock()
	if retired != 2 {
		t.Errorf("stop handles invoked = %d, want 2 (aged-out entries retired)", retired)
	}
	if got := mgr.StartedCount(); got != 4 {
		t.Errorf("StartedCount after age-out = %d, want 4 (replacements started)", got)
	}
}

// TestObserveViewKeepsPendingJoins: a view change that doesn't (yet) include
// a just-started replica must not discard its tracking entry. Before the fix
// ObserveView dropped every absent entry, so an unrelated view change leaked
// the joining replica's stop handle and triggered an over-provisioning start
// on the next reconcile.
func TestObserveViewKeepsPendingJoins(t *testing.T) {
	stops := 0
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() { stops++ }, nil
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 2,
		Factory:          factory,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile()
	if got := mgr.StartedCount(); got != 2 {
		t.Fatalf("StartedCount = %d, want 2", got)
	}
	// An unrelated membership event arrives before the new replicas join.
	mgr.ObserveView(group.View{Number: 1, Members: []wire.ReplicaID{"bystander"}})
	mgr.reconcile()
	if got := mgr.StartedCount(); got != 2 {
		t.Errorf("StartedCount after unrelated view = %d, want still 2 (pending joins kept their slots)", got)
	}
	// Stop must still reach the pending replicas' handles.
	mgr.Stop()
	if stops != 2 {
		t.Errorf("Stop invoked %d handles, want 2", stops)
	}
}

// TestObserveViewDropsJoinedThenLeft: the original prune still applies to
// replicas that joined and later left — they are dead, their handles are
// released, and reconcile starts replacements.
func TestObserveViewDropsJoinedThenLeft(t *testing.T) {
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() {}, nil
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 1,
		Factory:          factory,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile()
	mgr.ObserveView(group.View{Number: 1, Members: []wire.ReplicaID{"svc-p1"}})
	mgr.ObserveView(group.View{Number: 2, Members: nil}) // crashed
	mgr.reconcile()
	if got := mgr.StartedCount(); got != 2 {
		t.Errorf("StartedCount = %d, want 2 (crash replaced)", got)
	}
}
