package proteus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aqua/internal/group"
	"aqua/internal/wire"
)

// TestFactoryFailureBacksOffExponentially: a persistently failing factory
// must not be hammered on every reconcile. Before the fix every
// CheckInterval produced another attempt; now consecutive failures double
// the wait.
func TestFactoryFailureBacksOffExponentially(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	failing := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return "", nil, fmt.Errorf("permanent failure")
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 1,
		Factory:          failing,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile() // first attempt fails → backoff 2×CheckInterval
	for i := 0; i < 20; i++ {
		mgr.reconcile() // all inside the backoff window: no attempts
	}
	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("factory calls = %d during backoff, want 1", got)
	}

	time.Sleep(12 * time.Millisecond) // past the 10ms first backoff
	mgr.reconcile()                   // second attempt → backoff 4×CheckInterval
	for i := 0; i < 20; i++ {
		mgr.reconcile()
	}
	mu.Lock()
	got = calls
	mu.Unlock()
	if got != 2 {
		t.Fatalf("factory calls = %d after one backoff, want 2", got)
	}
	if st := mgr.Stats(); st.FactoryFailures != 2 || st.Starts != 2 {
		t.Errorf("stats = %+v, want FactoryFailures=2 Starts=2", st)
	}
}

// TestBackoffClearsOnSuccess: a success resets the failure streak so the
// next failure starts the backoff ladder from the bottom.
func TestBackoffClearsOnSuccess(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return "", nil, fmt.Errorf("transient")
		}
		return id, func() {}, nil
	}
	mgr, err := NewManager(Policy{
		Service:          "svc",
		ReplicationLevel: 1,
		Factory:          factory,
		CheckInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile()                   // fails
	time.Sleep(12 * time.Millisecond) // ride out the backoff
	mgr.reconcile()                   // succeeds
	mgr.mu.Lock()
	streak, until := mgr.failStreak, mgr.backoffUntil
	mgr.mu.Unlock()
	if streak != 0 || !until.IsZero() {
		t.Errorf("failStreak=%d backoffUntil=%v after success, want reset", streak, until)
	}
}

// TestRestartStormCap: factory starts within RestartWindow are bounded by
// MaxRestartsPerWindow even when the deficit says otherwise.
func TestRestartStormCap(t *testing.T) {
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() {}, nil
	}
	mgr, err := NewManager(Policy{
		Service:              "svc",
		ReplicationLevel:     5,
		Factory:              factory,
		CheckInterval:        5 * time.Millisecond,
		MaxRestartsPerWindow: 3,
		RestartWindow:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile()
	mgr.reconcile()
	if got := mgr.StartedCount(); got != 3 {
		t.Errorf("StartedCount = %d, want 3 (capped)", got)
	}
	if st := mgr.Stats(); st.Suppressed == 0 {
		t.Error("Suppressed = 0, want refused starts counted")
	}
}

// TestQuarantineRestartsReplica is the §5.4 rejuvenation loop end to end: a
// quarantined (sick but alive) member is retired and the factory starts a
// replacement.
func TestQuarantineRestartsReplica(t *testing.T) {
	pool, mgr := newManagedPool(t, 2)
	mgr.Run()
	waitFor(t, time.Second, func() bool { return pool.liveCount() == 2 }, "pool at level")

	pool.mu.Lock()
	var victim wire.ReplicaID
	for id := range pool.live {
		victim = id
		break
	}
	pool.mu.Unlock()

	if !mgr.Quarantine(victim) {
		t.Fatal("Quarantine refused")
	}
	pool.pushView() // the stop handle killed it; the view catches up
	waitFor(t, time.Second, func() bool { return pool.liveCount() == 2 }, "pool restored after rejuvenation")

	pool.mu.Lock()
	stillThere := pool.live[victim]
	stopped := len(pool.stopped)
	pool.mu.Unlock()
	if stillThere {
		t.Error("quarantined replica still live")
	}
	if stopped != 1 {
		t.Errorf("stopped = %d, want 1", stopped)
	}
	if st := mgr.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	if got := mgr.StartedCount(); got != 3 {
		t.Errorf("StartedCount = %d, want 3 (2 initial + 1 rejuvenation)", got)
	}
}

// TestQuarantineForeignReplicaNeedsRetire: replicas the manager did not
// start can only be rejuvenated through the Retire hook.
func TestQuarantineForeignReplicaNeedsRetire(t *testing.T) {
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() {}, nil
	}
	var retired []wire.ReplicaID
	mk := func(retire func(wire.ReplicaID)) *Manager {
		mgr, err := NewManager(Policy{
			Service:          "svc",
			ReplicationLevel: 1,
			Factory:          factory,
			CheckInterval:    5 * time.Millisecond,
			Retire:           retire,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mgr.Stop)
		mgr.ObserveView(group.View{Number: 1, Members: []wire.ReplicaID{"foreign"}})
		return mgr
	}

	if mk(nil).Quarantine("foreign") {
		t.Error("Quarantine of a foreign replica succeeded with no Retire hook")
	}
	mgr := mk(func(id wire.ReplicaID) { retired = append(retired, id) })
	if !mgr.Quarantine("foreign") {
		t.Fatal("Quarantine refused with Retire hook present")
	}
	if len(retired) != 1 || retired[0] != "foreign" {
		t.Errorf("retired = %v, want [foreign]", retired)
	}
}

// TestQuarantineSuppressedByStormCap: with the restart budget exhausted,
// quarantine leaves the replica in place rather than shrinking the pool
// with no replacement allowed.
func TestQuarantineSuppressedByStormCap(t *testing.T) {
	factory := func(id wire.ReplicaID) (wire.ReplicaID, func(), error) {
		return id, func() {}, nil
	}
	mgr, err := NewManager(Policy{
		Service:              "svc",
		ReplicationLevel:     1,
		Factory:              factory,
		CheckInterval:        5 * time.Millisecond,
		MaxRestartsPerWindow: 1,
		RestartWindow:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)

	mgr.reconcile() // consumes the single restart slot
	mgr.ObserveView(group.View{Number: 1, Members: []wire.ReplicaID{"svc-p1"}})
	if mgr.Quarantine("svc-p1") {
		t.Error("Quarantine succeeded with the restart budget exhausted")
	}
	if st := mgr.Stats(); st.Suppressed == 0 {
		t.Error("Suppressed = 0, want the refusal counted")
	}
}
