// Package proteus is the stand-in for AQuA's Proteus dependability manager
// (§2): it "manages the replication level for different applications based
// on their dependability requirements". This reproduction implements the
// slice of Proteus the paper exercises — keeping a service's replica pool at
// its configured level by starting fresh replicas when members crash.
package proteus

import (
	"fmt"
	"sync"
	"time"

	"aqua/internal/group"
	"aqua/internal/wire"
)

// Factory starts a brand-new replica for a service. The manager suggests a
// unique identity; the factory may substitute its own (e.g. an address-based
// ID) and must return the identity the replica actually joined with, plus a
// stop function.
type Factory func(suggested wire.ReplicaID) (actual wire.ReplicaID, stop func(), err error)

// Policy is a service's dependability requirement.
type Policy struct {
	// Service is the managed service.
	Service wire.Service
	// ReplicationLevel is the target number of live replicas.
	ReplicationLevel int
	// Factory starts replacement replicas.
	Factory Factory
	// CheckInterval is how often the pool is reconciled; zero means
	// DefaultCheckInterval.
	CheckInterval time.Duration
	// JoinTimeout is how long a factory-started replica may stay absent
	// from the group view before the manager gives up on it: its stop
	// handle is invoked, its slot is freed, and the next reconcile starts a
	// replacement. Zero means DefaultJoinTimeoutChecks × CheckInterval.
	JoinTimeout time.Duration
	// Retire removes a quarantined replica from the pool (stop the process,
	// drop it from the group). Quarantine calls it for replicas the manager
	// did not start itself; manager-started replicas are retired through
	// their own stop handles. Nil means only manager-started replicas can be
	// rejuvenated.
	Retire func(wire.ReplicaID)
	// MaxRestartsPerWindow caps factory start attempts (and therefore
	// quarantine retirements, which each imply a replacement start) within
	// any RestartWindow. It is the restart-storm fuse: a crash-looping
	// factory or a mass false-positive quarantine cannot churn the pool
	// faster than the cap. Zero means DefaultMaxRestartsPerWindow.
	MaxRestartsPerWindow int
	// RestartWindow is the sliding window the cap is measured over; zero
	// means DefaultRestartWindow.
	RestartWindow time.Duration
	// MaxBackoff caps the exponential factory-failure backoff; zero means
	// DefaultMaxBackoffChecks × CheckInterval.
	MaxBackoff time.Duration
}

// DefaultCheckInterval is the default reconciliation cadence.
const DefaultCheckInterval = 50 * time.Millisecond

// DefaultJoinTimeoutChecks is the default JoinTimeout expressed in check
// intervals: long enough for any healthy join (which normally completes
// within one interval), short enough that a wedged replica doesn't hold its
// pool slot for long.
const DefaultJoinTimeoutChecks = 20

// DefaultMaxRestartsPerWindow is the default restart-storm cap.
const DefaultMaxRestartsPerWindow = 8

// DefaultRestartWindow is the default sliding window for the restart cap.
const DefaultRestartWindow = 10 * time.Second

// DefaultMaxBackoffChecks is the default MaxBackoff expressed in check
// intervals: the factory-failure backoff doubles per consecutive failure and
// saturates here.
const DefaultMaxBackoffChecks = 64

// Manager reconciles one service's replica pool against its policy. It
// observes membership through a group view feed (ObserveView) — typically
// wired to a group.Node observer.
type Manager struct {
	policy Policy

	mu      sync.Mutex
	view    group.View
	started map[wire.ReplicaID]*startedEntry
	next    int
	stopped bool

	// Factory-failure damping: consecutive failures double the wait before
	// the next attempt (capped at MaxBackoff) instead of retrying every
	// CheckInterval.
	failStreak   int
	backoffUntil time.Time
	// startTimes holds recent factory start attempts, pruned to
	// RestartWindow: the restart-storm cap's evidence.
	startTimes []time.Time
	stats      ManagerStats

	stop chan struct{}
	wg   sync.WaitGroup
}

// ManagerStats counts the manager's rejuvenation activity.
type ManagerStats struct {
	// Starts is the number of factory start attempts (successful or not).
	Starts uint64
	// FactoryFailures counts factory errors.
	FactoryFailures uint64
	// Quarantined counts replicas retired via Quarantine.
	Quarantined uint64
	// Suppressed counts starts or quarantine retirements refused by the
	// restart-storm cap.
	Suppressed uint64
}

// startedEntry tracks one replica the manager launched: its stop handle,
// when it was started, and whether it has ever appeared in a group view.
// The joined flag is what distinguishes "still joining" (kept until the join
// timeout) from "joined and later left" (dead, dropped immediately).
type startedEntry struct {
	stop   func()
	at     time.Time
	joined bool
}

// NewManager validates the policy and returns a manager. Call Run to begin
// reconciling.
func NewManager(p Policy) (*Manager, error) {
	if p.Service == "" {
		return nil, fmt.Errorf("proteus: service is required")
	}
	if p.ReplicationLevel <= 0 {
		return nil, fmt.Errorf("proteus: replication level must be positive, got %d", p.ReplicationLevel)
	}
	if p.Factory == nil {
		return nil, fmt.Errorf("proteus: factory is required")
	}
	if p.CheckInterval <= 0 {
		p.CheckInterval = DefaultCheckInterval
	}
	if p.JoinTimeout <= 0 {
		p.JoinTimeout = DefaultJoinTimeoutChecks * p.CheckInterval
	}
	if p.MaxRestartsPerWindow <= 0 {
		p.MaxRestartsPerWindow = DefaultMaxRestartsPerWindow
	}
	if p.RestartWindow <= 0 {
		p.RestartWindow = DefaultRestartWindow
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoffChecks * p.CheckInterval
	}
	return &Manager{
		policy:  p,
		started: make(map[wire.ReplicaID]*startedEntry),
		stop:    make(chan struct{}),
	}, nil
}

// ObserveView feeds the manager a membership view. Wire it to a group.Node
// with OnViewChange(m.ObserveView).
func (m *Manager) ObserveView(v group.View) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.view = v
	for id, e := range m.started {
		switch {
		case v.Contains(id):
			e.joined = true
		case e.joined:
			// Joined earlier, gone now: the replica is dead and its stop
			// handle will never be used again.
			delete(m.started, id)
		}
		// A never-joined entry survives view changes: it is either still
		// joining (and must keep holding its pool slot so reconcile doesn't
		// over-provision) or wedged, in which case the join timeout — not an
		// unrelated view change — is what retires it. Dropping it here leaked
		// the running process by discarding its only stop handle.
	}
}

// Run starts the reconcile loop; it returns immediately. Stop with Stop.
func (m *Manager) Run() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.policy.CheckInterval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.reconcile()
			}
		}
	}()
}

// reconcile ages out replicas that never joined and starts new ones until
// the live count reaches the target.
func (m *Manager) reconcile() {
	m.mu.Lock()
	now := time.Now()
	var expired []func()
	for id, e := range m.started {
		if !e.joined && m.view.Contains(id) {
			// The view carrying this replica arrived before the factory
			// returned its identity; catch the flag up so the entry isn't
			// aged out (and stopped) while alive.
			e.joined = true
		}
		if !e.joined && now.Sub(e.at) >= m.policy.JoinTimeout {
			// Started but never joined: the replica wedged during startup.
			// Without this age-out the entry counts as live forever, so the
			// pool silently runs below target and the stop handle leaks.
			expired = append(expired, e.stop)
			delete(m.started, id)
		}
	}
	live := len(m.view.Members)
	// Replicas we started that have not yet appeared in a view also count,
	// otherwise a slow join causes over-provisioning.
	for _, e := range m.started {
		if !e.joined {
			live++
		}
	}
	deficit := m.policy.ReplicationLevel - live
	if now.Before(m.backoffUntil) {
		// A recent factory failure put starts on exponential backoff; the
		// deficit persists and is retried when the backoff elapses.
		deficit = 0
	}
	m.mu.Unlock()

	for _, stopFn := range expired {
		stopFn()
	}

	for i := 0; i < deficit; i++ {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return
		}
		if !m.allowRestartLocked(time.Now()) {
			// Restart-storm cap: the pool stays below target until the
			// window slides rather than churning faster than replicas can
			// prove themselves.
			m.stats.Suppressed++
			m.mu.Unlock()
			return
		}
		m.startTimes = append(m.startTimes, time.Now())
		m.stats.Starts++
		m.next++
		suggested := wire.ReplicaID(fmt.Sprintf("%s-p%d", m.policy.Service, m.next))
		m.mu.Unlock()

		actual, stopFn, err := m.policy.Factory(suggested)
		if err != nil {
			// Exponential backoff: a persistent factory failure shows up as
			// a pool below target (Level()) without hammering the factory
			// every CheckInterval.
			m.mu.Lock()
			m.stats.FactoryFailures++
			m.failStreak++
			d := m.policy.MaxBackoff
			if m.failStreak < 30 {
				if b := m.policy.CheckInterval << uint(m.failStreak); b < d {
					d = b
				}
			}
			m.backoffUntil = time.Now().Add(d)
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		m.failStreak = 0
		m.backoffUntil = time.Time{}
		if m.stopped {
			m.mu.Unlock()
			stopFn()
			return
		}
		m.started[actual] = &startedEntry{stop: stopFn, at: time.Now(), joined: m.view.Contains(actual)}
		m.mu.Unlock()
	}
}

// allowRestartLocked prunes the start history to the sliding window and
// reports whether another restart fits under the cap. Caller holds m.mu.
func (m *Manager) allowRestartLocked(now time.Time) bool {
	cutoff := now.Add(-m.policy.RestartWindow)
	keep := m.startTimes[:0]
	for _, t := range m.startTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	m.startTimes = keep
	return len(m.startTimes) < m.policy.MaxRestartsPerWindow
}

// Quarantine retires a sick-but-alive replica so the pool rejuvenates it:
// the replica is stopped (via its stop handle when the manager started it,
// via Policy.Retire otherwise), the group view drops it, and the next
// reconcile starts a fresh replacement through the factory. This closes the
// §5.4 loop for *timing*-faulty replicas, which never crash on their own.
//
// Returns false when the restart-storm cap is exhausted (the replica is left
// in place — the caller's quarantine marking already keeps it out of
// selection), when the manager has no way to stop the replica (not
// manager-started and no Retire hook), or after Stop.
func (m *Manager) Quarantine(id wire.ReplicaID) bool {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return false
	}
	e, mine := m.started[id]
	if !mine && m.policy.Retire == nil {
		m.mu.Unlock()
		return false
	}
	if !m.allowRestartLocked(time.Now()) {
		// Retiring now would shrink the pool with no replacement allowed:
		// worse than leaving a quarantined (deselected) replica running.
		m.stats.Suppressed++
		m.mu.Unlock()
		return false
	}
	if mine {
		delete(m.started, id)
	}
	m.stats.Quarantined++
	retire := m.policy.Retire
	m.mu.Unlock()

	if mine && e.stop != nil {
		e.stop()
	} else if retire != nil {
		retire(id)
	}
	return true
}

// Stats returns a snapshot of the manager's rejuvenation counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Level returns the current live member count as seen by the manager.
func (m *Manager) Level() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.view.Members)
}

// StartedCount returns how many replicas the manager has launched in total.
func (m *Manager) StartedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}

// Stop halts reconciliation and stops every replica the manager started.
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	stops := make([]func(), 0, len(m.started))
	for _, e := range m.started {
		stops = append(stops, e.stop)
	}
	m.started = make(map[wire.ReplicaID]*startedEntry)
	m.mu.Unlock()

	close(m.stop)
	m.wg.Wait()
	for _, f := range stops {
		f()
	}
}
