package core

import (
	"sync"
	"testing"
	"time"

	"aqua/internal/repository"
	"aqua/internal/wire"
)

const ms = time.Millisecond

// warmRepo builds a repository whose replicas each have deterministic
// constant history: service time svc, queue delay qd, gateway delay gw.
func warmRepo(t *testing.T, n int, svc, qd, gw time.Duration) *repository.Repository {
	t.Helper()
	repo := repository.New()
	base := time.Now()
	for i := 0; i < n; i++ {
		id := wire.ReplicaID(rune('a' + i))
		repo.AddReplica(id)
		for j := 0; j < repository.DefaultWindowSize; j++ {
			repo.RecordPerf(id, "", wire.PerfReport{ServiceTime: svc, QueueDelay: qd}, base)
		}
		repo.RecordGatewayDelay(id, gw)
	}
	return repo
}

func newSched(t *testing.T, repo *repository.Repository, q wire.QoS) *Scheduler {
	t.Helper()
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        q,
		Repository: repo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(Config{Service: "s", QoS: wire.QoS{Deadline: -1}}); err == nil {
		t.Error("want error for invalid QoS")
	}
	if _, err := NewScheduler(Config{QoS: wire.QoS{Deadline: time.Second}}); err == nil {
		t.Error("want error for missing service")
	}
}

func TestScheduleColdStartSelectsAll(t *testing.T) {
	repo := repository.New()
	repo.AddReplica("a")
	repo.AddReplica("b")
	repo.AddReplica("c")
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})

	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !d.ColdStart {
		t.Error("ColdStart = false on first access")
	}
	if len(d.Targets) != 3 {
		t.Errorf("Targets = %v, want all 3 (paper's first-access rule)", d.Targets)
	}
}

func TestScheduleNoReplicas(t *testing.T) {
	s := newSched(t, repository.New(), wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})
	if _, err := s.Schedule(time.Now(), ""); err == nil {
		t.Error("want error with no replicas")
	}
}

func TestRequestLifecycleTimelyResponse(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})

	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) < 2 {
		t.Fatalf("Targets = %v, want >= 2 (crash reserve)", d.Targets)
	}
	t1 := t0.Add(ms)
	if err := s.Dispatched(d.Seq, t1); err != nil {
		t.Fatal(err)
	}
	t4 := t0.Add(20 * ms)
	out := s.OnReply(d.Seq, d.Targets[0], t4, wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms})
	if !out.First {
		t.Fatal("first reply not marked First")
	}
	if out.TimingFailure {
		t.Error("timely reply flagged as timing failure")
	}
	if out.ResponseTime != 20*ms {
		t.Errorf("ResponseTime = %v, want 20ms", out.ResponseTime)
	}
	st := s.Stats()
	if st.Completed != 1 || st.TimingFailures != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDuplicateRepliesHarvestedNotDelivered(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})

	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	if err := s.Dispatched(d.Seq, t0.Add(ms)); err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) < 2 {
		t.Fatalf("need >= 2 targets, got %v", d.Targets)
	}
	first := s.OnReply(d.Seq, d.Targets[0], t0.Add(15*ms), wire.PerfReport{ServiceTime: 9 * ms, QueueDelay: ms})
	dup := s.OnReply(d.Seq, d.Targets[1], t0.Add(18*ms), wire.PerfReport{ServiceTime: 11 * ms, QueueDelay: 2 * ms})
	if !first.First || dup.First {
		t.Errorf("first=%+v dup=%+v", first, dup)
	}
	if !dup.Duplicate {
		t.Error("second reply not marked duplicate")
	}
	st := s.Stats()
	if st.Duplicates != 1 || st.Replies != 2 {
		t.Errorf("stats = %+v", st)
	}
	// The duplicate's perf data must have updated the repository: each of
	// the two replicas absorbed one new report beyond the warmup.
	if got := repo.UpdateCount(d.Targets[1]); got != uint64(repository.DefaultWindowSize)+1 {
		t.Errorf("duplicate perf not harvested: count=%d", got)
	}
}

func TestGatewayDelayDerivedFromReply(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, 0)
	s := newSched(t, repo, wire.QoS{Deadline: 500 * ms, MinProbability: 0})

	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	t1 := t0.Add(ms)
	if err := s.Dispatched(d.Seq, t1); err != nil {
		t.Fatal(err)
	}
	// t4 - t1 = 30ms; tq = 4ms; ts = 20ms → td = 6ms.
	t4 := t1.Add(30 * ms)
	s.OnReply(d.Seq, d.Targets[0], t4, wire.PerfReport{ServiceTime: 20 * ms, QueueDelay: 4 * ms})
	snap, err := repo.SnapshotOne(d.Targets[0], "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.GatewayDelay != 6*ms {
		t.Errorf("GatewayDelay = %v, want 6ms", snap.GatewayDelay)
	}
}

func TestTimingFailureDetection(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 50 * ms, MinProbability: 0})

	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	if err := s.Dispatched(d.Seq, t0.Add(ms)); err != nil {
		t.Fatal(err)
	}
	out := s.OnReply(d.Seq, d.Targets[0], t0.Add(80*ms), wire.PerfReport{ServiceTime: 70 * ms})
	if !out.TimingFailure {
		t.Error("late reply not flagged as timing failure")
	}
	if got := s.Stats().TimingFailures; got != 1 {
		t.Errorf("TimingFailures = %d, want 1", got)
	}
}

func TestDeadlineExpiryChargesOnce(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 50 * ms, MinProbability: 0})

	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	if err := s.Dispatched(d.Seq, t0.Add(ms)); err != nil {
		t.Fatal(err)
	}
	s.OnDeadlineExpired(d.Seq)
	s.OnDeadlineExpired(d.Seq) // second expiry is a no-op
	st := s.Stats()
	if st.TimingFailures != 1 || st.DeadlineExpiries != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// A late first reply is still delivered but not double-counted.
	out := s.OnReply(d.Seq, d.Targets[0], t0.Add(90*ms), wire.PerfReport{ServiceTime: 80 * ms})
	if !out.First {
		t.Error("late reply should still be delivered as first")
	}
	if !out.TimingFailure {
		t.Error("late reply should be reported as a timing failure to the caller")
	}
	if got := s.Stats().TimingFailures; got != 1 {
		t.Errorf("TimingFailures double-counted: %d", got)
	}
}

func TestUnknownAndForeignReplies(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0})

	out := s.OnReply(999, "a", time.Now(), wire.PerfReport{})
	if !out.Unknown {
		t.Error("unknown seq not flagged")
	}
	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	// Reply from a replica that was never targeted... craft one.
	out = s.OnReply(d.Seq, "not-a-target", t0.Add(ms), wire.PerfReport{})
	if !out.Unknown {
		t.Error("foreign replica reply not ignored")
	}
}

func TestViolationCallbackFiresOnceBelowThreshold(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:                "svc",
		QoS:                    wire.QoS{Deadline: 50 * ms, MinProbability: 0.9},
		Repository:             repo,
		MinSamplesForViolation: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var violations []*ViolationReport
	base := time.Now()
	for i := 0; i < 6; i++ {
		t0 := base.Add(time.Duration(i) * time.Second)
		d, err := s.Schedule(t0, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Dispatched(d.Seq, t0); err != nil {
			t.Fatal(err)
		}
		// Every reply is late: tr = 80ms > 50ms.
		out := s.OnReply(d.Seq, d.Targets[0], t0.Add(80*ms), wire.PerfReport{ServiceTime: 70 * ms})
		if out.Violation != nil {
			violations = append(violations, out.Violation)
		}
	}
	if len(violations) != 1 {
		t.Fatalf("violations fired %d times, want exactly 1", len(violations))
	}
	v := violations[0]
	if v.ObservedTimely != 0 || v.RequiredTimely != 0.9 {
		t.Errorf("report = %+v", v)
	}
	if v.Completed < 3 {
		t.Errorf("violation fired before MinSamples: %+v", v)
	}
}

func TestRenegotiateRearmsViolation(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:                "svc",
		QoS:                    wire.QoS{Deadline: 50 * ms, MinProbability: 0.9},
		Repository:             repo,
		MinSamplesForViolation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fail := func() *ViolationReport {
		t0 := time.Now()
		d, _ := s.Schedule(t0, "")
		if err := s.Dispatched(d.Seq, t0); err != nil {
			t.Fatal(err)
		}
		out := s.OnReply(d.Seq, d.Targets[0], t0.Add(80*ms), wire.PerfReport{ServiceTime: 70 * ms})
		return out.Violation
	}
	if fail() == nil {
		t.Fatal("first violation not reported")
	}
	if fail() != nil {
		t.Fatal("violation reported twice without renegotiation")
	}
	if err := s.Renegotiate(wire.QoS{Deadline: 50 * ms, MinProbability: 0.95}); err != nil {
		t.Fatal(err)
	}
	if s.QoS().MinProbability != 0.95 {
		t.Error("renegotiated QoS not stored")
	}
	if fail() == nil {
		t.Error("violation not re-armed after renegotiation")
	}
	if err := s.Renegotiate(wire.QoS{Deadline: 0}); err == nil {
		t.Error("want error for invalid renegotiation")
	}
}

func TestMembershipChangePrunesCrashedReplica(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.5})
	s.OnMembershipChange([]wire.ReplicaID{"a", "b"}) // c crashed

	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range d.Targets {
		if id == "c" {
			t.Error("crashed replica still selected")
		}
	}
}

func TestOnPerfUpdateFeedsRepository(t *testing.T) {
	repo := repository.New()
	repo.AddReplica("a")
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.5})
	s.OnPerfUpdate(wire.PerfUpdate{
		Replica: "a",
		Perf:    wire.PerfReport{ServiceTime: 5 * ms, QueueDelay: ms, QueueLength: 1},
	}, time.Now())
	snap, err := repo.SnapshotOne("a", "")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.HasHistory {
		t.Error("pushed update did not populate history")
	}
}

func TestOverheadCompensationTightensDeadline(t *testing.T) {
	// Replica responds in exactly 100ms (point mass). With a 100ms deadline
	// F = 1; with compensation δ=5ms the effective deadline is 95ms → F = 0,
	// so the dynamic strategy must fall back to selecting all replicas.
	repo := warmRepo(t, 3, 100*ms, 0, 0)
	s, err := NewScheduler(Config{
		Service:            "svc",
		QoS:                wire.QoS{Deadline: 100 * ms, MinProbability: 0.5},
		Repository:         repo,
		CompensateOverhead: true,
		FixedOverhead:      5 * ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsedAll {
		t.Errorf("with compensation, want fallback to all; got %v", d.Targets)
	}

	// Without compensation the same setup is satisfiable with 2 replicas.
	s2 := newSched(t, warmRepo(t, 3, 100*ms, 0, 0), wire.QoS{Deadline: 100 * ms, MinProbability: 0.5})
	d2, err := s2.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if d2.UsedAll || len(d2.Targets) != 2 {
		t.Errorf("without compensation, want 2 targets; got %v (usedAll=%v)", d2.Targets, d2.UsedAll)
	}
}

func TestStalenessBoundForcesProbe(t *testing.T) {
	repo := repository.New()
	old := time.Now().Add(-time.Hour)
	for _, id := range []wire.ReplicaID{"a", "b", "c"} {
		repo.AddReplica(id)
		for j := 0; j < 5; j++ {
			repo.RecordPerf(id, "", wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: ms}, old)
		}
	}
	// Refresh only a and b.
	now := time.Now()
	repo.RecordPerf("a", "", wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: ms}, now)
	repo.RecordPerf("b", "", wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: ms}, now)

	s, err := NewScheduler(Config{
		Service:        "svc",
		QoS:            wire.QoS{Deadline: 100 * ms, MinProbability: 0.5},
		Repository:     repo,
		StalenessBound: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Schedule(now, "")
	if err != nil {
		t.Fatal(err)
	}
	var hasC bool
	for _, id := range d.Targets {
		if id == "c" {
			hasC = true
		}
	}
	if !hasC {
		t.Errorf("stale replica not probed: %v", d.Targets)
	}
	if !d.ColdStart {
		t.Error("ColdStart flag should mark the forced probe")
	}
}

func TestForgetAndOutstanding(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0})
	d, _ := s.Schedule(time.Now(), "")
	if got := s.Outstanding(); got != 1 {
		t.Errorf("Outstanding = %d, want 1", got)
	}
	s.Forget(d.Seq)
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding = %d, want 0", got)
	}
	s.Forget(12345) // unknown is fine
}

func TestPendingRemovedAfterAllReplies(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 500 * ms, MinProbability: 0})
	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	if err := s.Dispatched(d.Seq, t0); err != nil {
		t.Fatal(err)
	}
	for _, id := range d.Targets {
		s.OnReply(d.Seq, id, t0.Add(20*ms), wire.PerfReport{ServiceTime: 10 * ms})
	}
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding = %d after all replies, want 0", got)
	}
}

func TestDispatchedUnknownSeq(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0})
	if err := s.Dispatched(777, time.Now()); err == nil {
		t.Error("want error for unknown seq")
	}
}

func TestStatsMeanRedundancyAndFailureProbability(t *testing.T) {
	var st Stats
	if st.MeanRedundancy() != 0 || st.FailureProbability() != 0 {
		t.Error("zero-value stats should report 0")
	}
	st = Stats{Requests: 4, SelectedTotal: 10, Completed: 8, TimingFailures: 2}
	if got := st.MeanRedundancy(); got != 2.5 {
		t.Errorf("MeanRedundancy = %v", got)
	}
	if got := st.FailureProbability(); got != 0.25 {
		t.Errorf("FailureProbability = %v", got)
	}
}

func TestSeparateSchedulersIndependent(t *testing.T) {
	// Two clients each have their own handler + repository (the paper's
	// local-repository design); state must not leak.
	r1 := warmRepo(t, 2, 10*ms, 2*ms, ms)
	r2 := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s1 := newSched(t, r1, wire.QoS{Deadline: 100 * ms, MinProbability: 0})
	s2 := newSched(t, r2, wire.QoS{Deadline: 100 * ms, MinProbability: 0})
	d1, _ := s1.Schedule(time.Now(), "")
	if s2.Outstanding() != 0 {
		t.Error("scheduler state leaked across clients")
	}
	_ = d1
	if s1.Outstanding() != 1 {
		t.Error("s1 lost its own pending request")
	}
}

func TestLateReplyAfterExpiryDoesNotDoubleComplete(t *testing.T) {
	// Regression: a request whose deadline expires and whose first reply
	// arrives later must count exactly once in Completed.
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 50 * ms, MinProbability: 0})
	t0 := time.Now()
	d, _ := s.Schedule(t0, "")
	if err := s.Dispatched(d.Seq, t0); err != nil {
		t.Fatal(err)
	}
	s.OnDeadlineExpired(d.Seq)
	s.OnReply(d.Seq, d.Targets[0], t0.Add(90*ms), wire.PerfReport{ServiceTime: 80 * ms})
	st := s.Stats()
	if st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
	if st.TimingFailures != 1 {
		t.Errorf("TimingFailures = %d, want 1", st.TimingFailures)
	}
}

func TestSchedulerConcurrentStress(t *testing.T) {
	// Hammer the scheduler from parallel goroutines mixing schedules,
	// replies, expiries, membership changes, and renegotiations: counters
	// must stay consistent and nothing may race (run with -race).
	repo := warmRepo(t, 4, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				t0 := time.Now()
				d, err := s.Schedule(t0, "")
				if err != nil {
					continue
				}
				_ = s.Dispatched(d.Seq, t0)
				switch i % 3 {
				case 0:
					for _, id := range d.Targets {
						s.OnReply(d.Seq, id, t0.Add(20*ms), wire.PerfReport{ServiceTime: 10 * ms})
					}
				case 1:
					s.OnDeadlineExpired(d.Seq)
					s.Forget(d.Seq)
				case 2:
					s.OnReply(d.Seq, d.Targets[0], t0.Add(150*ms), wire.PerfReport{ServiceTime: 140 * ms})
					s.Forget(d.Seq)
				}
				if i%25 == 0 {
					_ = s.Renegotiate(wire.QoS{Deadline: 100 * ms, MinProbability: 0.5})
					s.OnMembershipChange(repo.Replicas())
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != 600 {
		t.Errorf("Requests = %d, want 600", st.Requests)
	}
	if st.Completed > st.Requests {
		t.Errorf("Completed %d > Requests %d", st.Completed, st.Requests)
	}
}
