package core

// Tests for the overload layer (admission control, the degradation ladder,
// the best-effort fallback cap) and the Renegotiate accounting-window
// regression.

import (
	"errors"
	"testing"
	"time"

	"aqua/internal/wire"
)

// TestRenegotiateResetsAccountingWindow: failures recorded under an old QoS
// contract must not pollute the observed-timely fraction compared against a
// renegotiated Pc. Before the fix, Renegotiate re-armed the callback but kept
// the cumulative counters as the accounting basis, so a client that had a bad
// run under a strict deadline and then relaxed it got an immediate spurious
// violation even though every request under the new contract was timely.
func TestRenegotiateResetsAccountingWindow(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:                "svc",
		QoS:                    wire.QoS{Deadline: 50 * ms, MinProbability: 0.9},
		Repository:             repo,
		MinSamplesForViolation: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip := func(rt time.Duration) *ViolationReport {
		t0 := time.Now()
		d, err := s.Schedule(t0, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Dispatched(d.Seq, t0); err != nil {
			t.Fatal(err)
		}
		out := s.OnReply(d.Seq, d.Targets[0], t0.Add(rt), wire.PerfReport{ServiceTime: rt - 10*ms})
		return out.Violation
	}

	// Ten failures under the strict 50ms contract (tr = 80ms).
	for i := 0; i < 10; i++ {
		roundTrip(80 * ms)
	}
	if s.Stats().TimingFailures != 10 {
		t.Fatalf("setup: TimingFailures = %d, want 10", s.Stats().TimingFailures)
	}

	// Relax the deadline. The same 80ms responses are now timely.
	if err := s.Renegotiate(wire.QoS{Deadline: 200 * ms, MinProbability: 0.9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if v := roundTrip(80 * ms); v != nil {
			t.Fatalf("spurious violation after renegotiation (completion %d): %v", i+1, v)
		}
	}

	// The window really is fresh: one late reply among the four timely ones
	// gives observed 4/5 = 0.8 < 0.9, and the report must be scoped to the
	// new window, not the lifetime counters.
	v := roundTrip(250 * ms)
	if v == nil {
		t.Fatal("violation under the new contract not reported")
	}
	if v.Completed != 5 || v.TimingFailures != 1 {
		t.Errorf("report window = %d completed / %d failures, want 5/1 (new contract only)",
			v.Completed, v.TimingFailures)
	}
	// Cumulative stats keep counting across contracts.
	st := s.Stats()
	if st.Completed != 15 || st.TimingFailures != 11 {
		t.Errorf("cumulative stats = %d completed / %d failures, want 15/11",
			st.Completed, st.TimingFailures)
	}
}

// TestAdmissionControlShedsAtCeiling: with MaxInFlight configured, Schedule
// refuses work at the ceiling with ErrOverloaded, counts the shed, and the
// ladder climbs Normal → Budgeted → Shedding and descends rung by rung as the
// backlog drains.
func TestAdmissionControlShedsAtCeiling(t *testing.T) {
	repo := warmRepo(t, 4, 10*ms, 2*ms, ms)
	var trans []DegradationReport
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 100 * ms, MinProbability: 0.9},
		Repository: repo,
		Overload: OverloadConfig{
			MaxInFlight:   4, // enter=2, exit=1, shedExit=3
			OnDegradation: func(r DegradationReport) { trans = append(trans, r) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	base := time.Now()
	var open []Decision
	for i := 0; i < 4; i++ {
		d, err := s.Schedule(base, "")
		if err != nil {
			t.Fatalf("Schedule %d below ceiling: %v", i, err)
		}
		if err := s.Dispatched(d.Seq, base); err != nil {
			t.Fatal(err)
		}
		open = append(open, d)
	}
	if got := s.Mode(); got != ModeShedding {
		t.Fatalf("Mode at ceiling = %v, want shedding", got)
	}

	// The fifth request is shed, not queued.
	d, err := s.Schedule(base, "")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Schedule at ceiling: err = %v, want ErrOverloaded", err)
	}
	if d.Mode != ModeShedding {
		t.Errorf("shed Decision.Mode = %v, want shedding", d.Mode)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}

	// Drain: reply from every target so each pending entry is dropped.
	for i, d := range open {
		t4 := base.Add(time.Duration(20+i) * ms)
		for _, id := range d.Targets {
			s.OnReply(d.Seq, id, t4, wire.PerfReport{ServiceTime: 10 * ms})
		}
	}
	if got := s.Mode(); got != ModeNormal {
		t.Fatalf("Mode after drain = %v, want normal", got)
	}

	// The ladder never jumps a rung: every transition is between neighbours,
	// and the descent passes through Budgeted.
	sawShedToBudgeted := false
	for _, r := range trans {
		if r.From-r.To != 1 && r.To-r.From != 1 {
			t.Errorf("ladder jumped a rung: %v", r)
		}
		if r.From == ModeShedding && r.To == ModeBudgeted {
			sawShedToBudgeted = true
		}
		if r.Service != "svc" || r.Ceiling != 4 {
			t.Errorf("report fields = %+v", r)
		}
	}
	if !sawShedToBudgeted {
		t.Errorf("no Shedding→Budgeted descent observed in %v", trans)
	}
	if st := s.Stats(); st.Degradations != uint64(len(trans)) {
		t.Errorf("Stats.Degradations = %d, want %d", st.Degradations, len(trans))
	}
}

// TestDegradedModeCapsSelectAll: while degraded, an unreachable Pc(t) must
// not trigger the paper's select-all amplification; the fallback is capped at
// BestEffortK (m0 reserve + best remaining replica).
func TestDegradedModeCapsSelectAll(t *testing.T) {
	// 10ms service against a 5ms deadline: F_Ri(t) ≈ 0 everywhere, Pc
	// unreachable, so the paper-exact fallback would select all 4 replicas.
	repo := warmRepo(t, 4, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 5 * ms, MinProbability: 0.9},
		Repository: repo,
		Overload:   OverloadConfig{BackpressureHold: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	base := time.Now()
	d, err := s.Schedule(base, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 4 || d.Mode != ModeNormal {
		t.Fatalf("normal-mode decision = %d targets in %v, want paper-exact 4 in normal", len(d.Targets), d.Mode)
	}
	finish := func(d Decision) {
		for _, id := range d.Targets {
			s.OnReply(d.Seq, id, base.Add(20*ms), wire.PerfReport{ServiceTime: 10 * ms})
		}
	}
	finish(d)

	// A transport backpressure signal degrades the scheduler even with no
	// admission ceiling configured.
	s.NoteBackpressure()
	if got := s.Mode(); got != ModeBudgeted {
		t.Fatalf("Mode after backpressure = %v, want budgeted", got)
	}
	d, err = s.Schedule(base, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != DefaultBestEffortK {
		t.Errorf("degraded fallback selected %d replicas, want best-effort %d", len(d.Targets), DefaultBestEffortK)
	}
	if !d.BudgetCapped || d.Mode != ModeBudgeted {
		t.Errorf("Decision = {BudgetCapped:%v Mode:%v}, want capped in budgeted mode", d.BudgetCapped, d.Mode)
	}
	if st := s.Stats(); st.Backpressure != 1 || st.BudgetCapped == 0 {
		t.Errorf("stats = %+v, want Backpressure=1 and BudgetCapped>0", st)
	}
	finish(d)

	// Two clean completions exhaust the hold; the ladder returns to Normal
	// and the select-all fallback is paper-exact again.
	d, err = s.Schedule(base, "")
	if err != nil {
		t.Fatal(err)
	}
	finish(d)
	if got := s.Mode(); got != ModeNormal {
		t.Fatalf("Mode after hold drained = %v, want normal", got)
	}
	d, err = s.Schedule(base, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 4 {
		t.Errorf("post-recovery fallback selected %d replicas, want all 4", len(d.Targets))
	}
	finish(d)
}
