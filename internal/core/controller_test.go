package core

// Fences for the adaptive redundancy controller and the scheduler's
// first-response-wins CancelTargets bookkeeping.

import (
	"testing"
	"time"

	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/wire"
)

// fakeClock is a deterministic time source the tests advance by hand.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time { return f.now }

// feedEpoch pushes one full epoch of completions at the given per-second
// goodput (timely completions spaced evenly over virtual time).
func feedEpoch(c *AdaptiveBudget, clk *fakeClock, epoch int, rate float64) {
	for i := 0; i < epoch; i++ {
		clk.now = clk.now.Add(time.Duration(float64(time.Second) / rate))
		c.OnOutcome(true)
	}
}

func TestControllerDefaultsAndClamp(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 1, MaxK: 5, Clock: clk.Now})
	if got := c.Budget(); got != 5 {
		t.Errorf("initial budget = %d, want MaxK", got)
	}
	if got := c.BudgetFor(0.5, 5); got != 5 {
		t.Errorf("BudgetFor under light load = %d, want 5", got)
	}
	// Saturation clamps to the floor (which was raised to MinBudget).
	if got := c.BudgetFor(100, 5); got != selection.MinBudget {
		t.Errorf("BudgetFor under saturation = %d, want %d", got, selection.MinBudget)
	}
	if c.Stats().Clamps != 1 {
		t.Errorf("clamps = %d, want 1", c.Stats().Clamps)
	}
}

func TestControllerClimbsTowardBetterGoodput(t *testing.T) {
	const epoch = 10
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 2, MaxK: 6, Epoch: epoch, Clock: clk.Now})
	c.budget.Store(6)
	c.dir = -1 // pretend the last step was downward

	// Each downward step "improves" goodput: the climb must keep walking
	// down, one bounded step per epoch.
	feedEpoch(c, clk, epoch, 10) // priming epoch (discarded)
	feedEpoch(c, clk, epoch, 10) // baseline epoch (no prev to compare)
	rate := 10.0
	for i := 0; i < 3; i++ {
		rate *= 1.5
		feedEpoch(c, clk, epoch, rate)
	}
	if got := c.Budget(); got != 3 {
		t.Errorf("budget after 3 improving epochs = %d, want 3 (one step each)", got)
	}
	// A regression reverses the direction.
	feedEpoch(c, clk, epoch, rate*0.5)
	if got := c.Budget(); got != 4 {
		t.Errorf("budget after regression = %d, want 4 (reversed)", got)
	}
	st := c.Stats()
	if st.StepsDown != 3 || st.StepsUp != 1 {
		t.Errorf("steps = %+v, want 3 down / 1 up", st)
	}
}

func TestControllerHoldsInsideDeadBand(t *testing.T) {
	const epoch = 10
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 2, MaxK: 6, Epoch: epoch, Clock: clk.Now})
	feedEpoch(c, clk, epoch, 10) // priming epoch (discarded)
	feedEpoch(c, clk, epoch, 10) // baseline
	// Two statistically flat epochs: hold, don't walk.
	feedEpoch(c, clk, epoch, 10.2)
	feedEpoch(c, clk, epoch, 9.9)
	if got := c.Budget(); got != 6 {
		t.Errorf("budget moved to %d inside the dead band", got)
	}
	if held := c.Stats().Held; held != 2 {
		t.Errorf("held = %d, want 2", held)
	}
	// After enough flat epochs the controller probes a step anyway.
	feedEpoch(c, clk, epoch, 10.05)
	if got := c.Budget(); got == 6 {
		t.Error("controller never probed after a full hold cycle")
	}
}

func TestControllerNeverLeavesBounds(t *testing.T) {
	const epoch = 4
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 2, MaxK: 4, Epoch: epoch, Clock: clk.Now})
	rate := 10.0
	for i := 0; i < 40; i++ {
		rate *= 1.3 // perpetual "improvement": the climb pushes one way forever
		feedEpoch(c, clk, epoch, rate)
		if b := c.Budget(); b < 2 || b > 4 {
			t.Fatalf("budget %d escaped [2,4]", b)
		}
	}
}

func TestControllerBudgetedIntegration(t *testing.T) {
	// Through selection.Budgeted, the controller's pick is clamped to the
	// strategy's own [MinK, MaxK].
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 2, MaxK: 8, Clock: clk.Now})
	b := &selection.Budgeted{MinK: 2, MaxK: 4}
	in := selection.Input{Controller: c}
	for i := 0; i < 5; i++ {
		in.Cold = append(in.Cold, repository.ReplicaSnapshot{ID: wire.ReplicaID(rune('a' + i))})
	}
	if got := b.BudgetFor(in); got != 4 {
		t.Errorf("budget through Budgeted = %d, want clamped 4 (controller at 8)", got)
	}
}

func TestCancelTargetsSettlesAndDiscounts(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	ctrl := NewAdaptiveBudget(AdaptiveBudgetConfig{MinK: 2, MaxK: 3})
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 100 * ms, MinProbability: 0.9},
		Repository: repo,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) < 2 {
		t.Fatalf("targets = %v, want >= 2", d.Targets)
	}
	// Before the first reply, CancelTargets must refuse (first-response-wins
	// means there is no winner yet).
	if got := s.CancelTargets(d.Seq, nil); got != nil {
		t.Errorf("CancelTargets before first reply returned %v", got)
	}

	first := d.Targets[0]
	out := s.OnReply(d.Seq, first, t0.Add(20*ms), wire.PerfReport{ServiceTime: 10 * ms})
	if !out.First {
		t.Fatal("first reply not First")
	}
	targets := s.CancelTargets(d.Seq, nil)
	if len(targets) != len(d.Targets)-1 {
		t.Fatalf("CancelTargets returned %v, want the %d losers", targets, len(d.Targets)-1)
	}
	for _, id := range targets {
		if id == first {
			t.Errorf("winner %s in cancel list", first)
		}
	}
	// The request no longer holds admission capacity, and the repository
	// in-flight contributions are all released.
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding after cancel = %d, want 0", got)
	}
	if got := ctrl.Stats().Cancelled; got != uint64(len(targets)) {
		t.Errorf("controller cancelled = %d, want %d", got, len(targets))
	}
	// Idempotent: a second call finds nothing unsettled.
	if again := s.CancelTargets(d.Seq, nil); again != nil {
		t.Errorf("second CancelTargets returned %v", again)
	}
	// A straggler reply from a cancelled replica is harvested as a
	// duplicate without disturbing the accounting.
	lateOut := s.OnReply(d.Seq, targets[0], t0.Add(30*ms), wire.PerfReport{ServiceTime: 15 * ms})
	if !lateOut.Duplicate {
		t.Errorf("straggler from cancelled replica: %+v, want Duplicate", lateOut)
	}
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding after straggler = %d, want 0", got)
	}
	// Forget must not double-discount the admission count.
	s.Forget(d.Seq)
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding after Forget = %d, want 0", got)
	}
	// A cancelled target's silence at the deadline earns no suspicion
	// charge — the request is already finalized and charged[i] is set — so
	// deadline expiry for this seq is a no-op.
	if v := s.OnDeadlineExpired(d.Seq); v != nil {
		t.Errorf("deadline expiry after cancel+forget produced violation %+v", v)
	}
}
