package core

// Regression tests for the PR 1 scheduler bugfixes: the pending-entry leak on
// full-subset crashes, the stale-δ-on-error path, and the overhead-clamp
// guard for δ ≥ deadline.

import (
	"testing"
	"time"

	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/wire"
)

// emptyStrategy always selects nothing, simulating a strategy failure.
type emptyStrategy struct{}

func (emptyStrategy) Name() string                            { return "empty" }
func (emptyStrategy) Select(selection.Input) selection.Result { return selection.Result{} }

// survivorsOf returns the replicas of repo that are NOT in the decision's
// target set.
func survivorsOf(repo *repository.Repository, d Decision) []wire.ReplicaID {
	targeted := make(map[wire.ReplicaID]bool, len(d.Targets))
	for _, id := range d.Targets {
		targeted[id] = true
	}
	var out []wire.ReplicaID
	for _, id := range repo.Replicas() {
		if !targeted[id] {
			out = append(out, id)
		}
	}
	return out
}

// TestMembershipSweepDrainsDoomedPending: when every replica a request was
// sent to leaves the group view, no reply can ever arrive; the membership
// sweep must drop the tracking state (no leak) and, because the deadline has
// already passed, charge the failure as a deadline expiry.
func TestMembershipSweepDrainsDoomedPending(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 50 * ms, MinProbability: 0.9})

	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Outstanding() != 1 {
		t.Fatalf("Outstanding() = %d after scheduling, want 1", s.Outstanding())
	}

	// Every selected replica crashes; the sweep time is past the deadline.
	s.OnMembershipChangeAt(survivorsOf(repo, d), t0.Add(60*ms))

	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding() = %d after full-subset crash sweep, want 0 (leak)", got)
	}
	st := s.Stats()
	if st.DeadlineExpiries != 1 {
		t.Errorf("DeadlineExpiries = %d, want 1 (sweep past deadline charges the failure)", st.DeadlineExpiries)
	}
	if st.TimingFailures != 1 || st.Completed != 1 {
		t.Errorf("TimingFailures/Completed = %d/%d, want 1/1", st.TimingFailures, st.Completed)
	}
}

// TestMembershipSweepBeforeDeadlineDropsWithoutCharge: a doomed entry swept
// before its deadline is still dropped (it can never complete) but must not
// be charged as an expiry yet — the deadline hasn't passed.
func TestMembershipSweepBeforeDeadlineDropsWithoutCharge(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})

	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	s.OnMembershipChangeAt(survivorsOf(repo, d), t0.Add(10*ms))

	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding() = %d, want 0", got)
	}
	if st := s.Stats(); st.DeadlineExpiries != 0 {
		t.Errorf("DeadlineExpiries = %d, want 0 (deadline not yet due)", st.DeadlineExpiries)
	}
}

// TestMembershipSweepSparesLiveTargets: a pending request keeping at least
// one live target must survive the sweep — a reply can still arrive.
func TestMembershipSweepSparesLiveTargets(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 50 * ms, MinProbability: 0.9})

	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Keep exactly one of the targets alive.
	s.OnMembershipChangeAt([]wire.ReplicaID{d.Targets[0]}, t0.Add(60*ms))

	if got := s.Outstanding(); got != 1 {
		t.Errorf("Outstanding() = %d, want 1 (one target still alive)", got)
	}
	if st := s.Stats(); st.DeadlineExpiries != 0 {
		t.Errorf("DeadlineExpiries = %d, want 0", st.DeadlineExpiries)
	}
}

// TestMembershipSweepReportsViolation: expiring enough doomed requests must
// trip the QoS-violation predicate exactly as OnDeadlineExpired would, and
// the sweep must return the report.
func TestMembershipSweepReportsViolation(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:                "svc",
		QoS:                    wire.QoS{Deadline: 30 * ms, MinProbability: 0.9},
		Repository:             repo,
		MinSamplesForViolation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := s.Schedule(t0, ""); err != nil {
		t.Fatal(err)
	}
	rep := s.OnMembershipChangeAt(nil, t0.Add(40*ms))
	if rep == nil {
		t.Fatal("sweep past deadline with MinSamples=1 should report a QoS violation")
	}
	if rep.TimingFailures != 1 {
		t.Errorf("violation reports %d failures, want 1", rep.TimingFailures)
	}
}

// TestScheduleRecordsOverheadOnErrorPath: δ must be refreshed even when
// scheduling fails (strategy selects nothing). Before the fix, an error left
// s.lastOverhead stale, silently compensating later deadlines with an old δ.
func TestScheduleRecordsOverheadOnErrorPath(t *testing.T) {
	repo := warmRepo(t, 2, 10*ms, 2*ms, ms)
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 100 * ms, MinProbability: 0.9},
		Repository: repo,
		Strategy:   emptyStrategy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(time.Now(), ""); err == nil {
		t.Fatal("want error from empty selection")
	}
	if s.LastOverhead() <= 0 {
		t.Error("LastOverhead() not recorded on the strategy-error path")
	}

	// Predictor-level failure (no replicas at all) must also refresh δ.
	s2 := newSched(t, repository.New(), wire.QoS{Deadline: 100 * ms, MinProbability: 0.9})
	if _, err := s2.Schedule(time.Now(), ""); err == nil {
		t.Fatal("want error with no replicas")
	}
	if s2.LastOverhead() <= 0 {
		t.Error("LastOverhead() not recorded on the no-replica error path")
	}
}

// TestOverheadClampKeepsSelectionDiscriminating: with CompensateOverhead and
// a pathological δ ≥ deadline, the effective deadline must not collapse to 0
// — F_Ri(0) = 0 would degenerate every selection into "use all replicas"
// churn. The clamp caps δ at deadline/2, so fast replicas (10ms point mass
// against a 100ms deadline) still satisfy F(50ms) = 1 and a proper subset is
// chosen.
func TestOverheadClampKeepsSelectionDiscriminating(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 0, 0)
	s, err := NewScheduler(Config{
		Service:            "svc",
		QoS:                wire.QoS{Deadline: 100 * ms, MinProbability: 0.5},
		Repository:         repo,
		CompensateOverhead: true,
		FixedOverhead:      150 * ms, // δ > deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.UsedAll {
		t.Errorf("δ ≥ deadline degenerated selection to all replicas: %v", d.Targets)
	}
	if len(d.Targets) != 2 {
		t.Errorf("Targets = %v, want the 2-replica crash-reserve subset", d.Targets)
	}
	if d.Predicted != 1 {
		t.Errorf("Predicted = %v, want 1 (F(50ms) = 1 for 10ms point mass)", d.Predicted)
	}
}
