package core

// Overload control: admission shedding and the degraded-mode ladder.
//
// The paper's Algorithm 1 assumes the pool has spare capacity: when no
// subset reaches Pc(t) it multicasts to ALL replicas (line 15), which
// multiplies offered load by |M| exactly when the system can least afford it
// (ablation A12 measures the resulting collapse). This file adds the
// overload-aware layer on top of the paper-exact scheduler:
//
//   - an in-flight ceiling with explicit shedding (ErrOverloaded) so excess
//     demand is refused at the gateway instead of queueing into collapse;
//   - a three-state degradation ladder, Normal → Budgeted → Shedding, driven
//     by the in-flight count (and transport backpressure signals) with
//     hysteresis so the mode doesn't flap at a threshold;
//   - a best-effort cap replacing the select-all fallback while degraded:
//     when Pc(t) is unreachable anyway, sending the m0 reserve plus the best
//     remaining replica preserves Eq. 3's shape without the amplification.
//
// Load-conditioned |K| budgeting itself lives in selection.Budgeted; this
// ladder is strategy-independent and composes with it.

import (
	"errors"
	"fmt"

	"aqua/internal/wire"
)

// ErrOverloaded is returned by Schedule when admission control sheds the
// request: the in-flight ceiling is reached and accepting more work would
// deepen the overload. Callers detect it with errors.Is and may retry after
// backing off (the gateway's bounded single-retry policy does exactly that).
var ErrOverloaded = errors.New("core: overloaded, request shed by admission control")

// Mode is a position on the degradation ladder.
type Mode int32

const (
	// ModeNormal: the paper-exact regime; no overload intervention.
	ModeNormal Mode = iota
	// ModeBudgeted: load is building; select-all fallbacks are capped to
	// the best-effort set and the strategy's budget (if any) is binding.
	ModeBudgeted
	// ModeShedding: the in-flight ceiling is reached; new requests are
	// refused with ErrOverloaded until the backlog drains.
	ModeShedding
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeBudgeted:
		return "budgeted"
	case ModeShedding:
		return "shedding"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// Degradation-ladder defaults. The enter/exit pairs are deliberately spread
// apart (hysteresis): a mode entered at fraction f of the ceiling is left
// only when the in-flight count falls to a strictly lower fraction, so small
// oscillations around a threshold don't flap the mode.
const (
	// DefaultBudgetEnterFraction of MaxInFlight enters Budgeted.
	DefaultBudgetEnterFraction = 0.5
	// DefaultBudgetExitFraction of MaxInFlight returns to Normal.
	DefaultBudgetExitFraction = 0.25
	// DefaultShedExitFraction of MaxInFlight drops Shedding back to
	// Budgeted (never straight to Normal: the ladder is descended rung by
	// rung).
	DefaultShedExitFraction = 0.75
	// DefaultBestEffortK replaces the select-all fallback while degraded:
	// the m0 crash reserve plus the best remaining replica.
	DefaultBestEffortK = 2
	// DefaultBackpressureHold is how many request completions a transport
	// backpressure signal keeps the scheduler in Budgeted mode for.
	DefaultBackpressureHold = 16
)

// OverloadConfig configures admission control and the degradation ladder.
// The zero value disables the in-flight ceiling; backpressure signals then
// still drive Normal ↔ Budgeted.
type OverloadConfig struct {
	// MaxInFlight is the admission ceiling: Schedule sheds (ErrOverloaded)
	// while this many requests are in flight. Zero disables shedding and
	// the in-flight-driven ladder rungs.
	MaxInFlight int
	// BudgetEnterFraction / BudgetExitFraction / ShedExitFraction override
	// the hysteresis thresholds, as fractions of MaxInFlight. Zero values
	// mean the defaults.
	BudgetEnterFraction float64
	BudgetExitFraction  float64
	ShedExitFraction    float64
	// BestEffortK caps select-all fallbacks while degraded; zero means
	// DefaultBestEffortK, negative disables the cap.
	BestEffortK int
	// BackpressureHold is how many completions a backpressure signal keeps
	// the ladder at Budgeted or above; zero means the default.
	BackpressureHold int
	// OnDegradation is invoked (outside the scheduler's lock) for every
	// ladder transition, in both directions. Must not block.
	OnDegradation func(DegradationReport)
}

// withDefaults resolves zero fields.
func (o OverloadConfig) withDefaults() OverloadConfig {
	if o.BudgetEnterFraction <= 0 {
		o.BudgetEnterFraction = DefaultBudgetEnterFraction
	}
	if o.BudgetExitFraction <= 0 {
		o.BudgetExitFraction = DefaultBudgetExitFraction
	}
	if o.ShedExitFraction <= 0 {
		o.ShedExitFraction = DefaultShedExitFraction
	}
	if o.BestEffortK == 0 {
		o.BestEffortK = DefaultBestEffortK
	}
	if o.BackpressureHold <= 0 {
		o.BackpressureHold = DefaultBackpressureHold
	}
	return o
}

// enabled reports whether any overload machinery is configured.
func (o OverloadConfig) enabled() bool {
	return o.MaxInFlight > 0 || o.OnDegradation != nil
}

// DegradationReport describes one transition on the degradation ladder.
type DegradationReport struct {
	Service  wire.Service
	From, To Mode
	// InFlight and Ceiling are the in-flight count and MaxInFlight at the
	// moment of the transition (Ceiling 0 = no admission ceiling).
	InFlight int
	Ceiling  int
	// Reason names the signal that caused the evaluation: "schedule",
	// "shed", "complete", or "backpressure".
	Reason string
}

func (d DegradationReport) String() string {
	return fmt.Sprintf("degradation on %q: %s -> %s (in-flight %d/%d, %s)",
		d.Service, d.From, d.To, d.InFlight, d.Ceiling, d.Reason)
}

// Mode returns the scheduler's current position on the degradation ladder.
func (s *Scheduler) Mode() Mode { return Mode(s.modeA.Load()) }

// NoteBackpressure feeds a transport-level backpressure signal (e.g.
// transport.ErrBackpressure from a saturated send queue) into the
// degradation ladder: the scheduler enters Budgeted mode — the network being
// unable to absorb the multicast fan-out is the same overload the in-flight
// ceiling watches for — and holds it there until BackpressureHold requests
// complete cleanly.
func (s *Scheduler) NoteBackpressure() {
	s.stats.backpressure.Add(1)
	s.met.backpressure.Inc()
	s.stateMu.Lock()
	s.bpHoldA.Store(int64(s.cfg.Overload.BackpressureHold))
	s.stateMu.Unlock()
	s.deliverDegradations(s.evalMode("backpressure", nil))
}

// evalMode recomputes the ladder position from the in-flight count and any
// backpressure hold, appending a report for each transition taken. It takes
// stateMu internally for the transition itself; the no-overload fast path is
// lock-free so the paper-exact configuration pays nothing. Callers may hold
// a shard mutex (shard.mu → stateMu is the ordering), never stateMu itself.
func (s *Scheduler) evalMode(reason string, reps []DegradationReport) []DegradationReport {
	o := s.cfg.Overload
	if !o.enabled() && s.bpHoldA.Load() == 0 && Mode(s.modeA.Load()) == ModeNormal {
		return reps
	}
	n := int(s.nPend.Load())
	s.stateMu.Lock()
	mode := Mode(s.modeA.Load())
	bp := s.bpHoldA.Load() > 0
	target := mode
	if o.MaxInFlight > 0 {
		ceil := o.MaxInFlight
		enter := threshold(ceil, o.BudgetEnterFraction)
		exit := threshold(ceil, o.BudgetExitFraction)
		shedExit := threshold(ceil, o.ShedExitFraction)
		switch mode {
		case ModeNormal:
			if n >= ceil {
				target = ModeShedding
			} else if n >= enter || bp {
				target = ModeBudgeted
			}
		case ModeBudgeted:
			if n >= ceil {
				target = ModeShedding
			} else if n <= exit && !bp {
				target = ModeNormal
			}
		case ModeShedding:
			if n <= shedExit {
				target = ModeBudgeted
			}
		}
	} else {
		// No ceiling: backpressure alone drives Normal ↔ Budgeted.
		if bp {
			if mode == ModeNormal {
				target = ModeBudgeted
			}
		} else if mode == ModeBudgeted {
			target = ModeNormal
		}
	}
	if target == mode {
		s.stateMu.Unlock()
		return reps
	}
	s.modeA.Store(int32(target))
	s.stats.degradations.Add(1)
	s.met.degradations.Inc()
	s.met.mode.Set(int64(target))
	s.stateMu.Unlock()
	return append(reps, DegradationReport{
		Service:  s.cfg.Service,
		From:     mode,
		To:       target,
		InFlight: n,
		Ceiling:  o.MaxInFlight,
		Reason:   reason,
	})
}

// threshold converts a fraction of the ceiling to a count, floored at 1 so a
// tiny ceiling still has distinct rungs.
func threshold(ceil int, frac float64) int {
	t := int(float64(ceil) * frac)
	if t < 1 {
		t = 1
	}
	return t
}

// deliverDegradations invokes the OnDegradation callback outside the lock.
func (s *Scheduler) deliverDegradations(reps []DegradationReport) {
	cb := s.cfg.Overload.OnDegradation
	if cb == nil {
		return
	}
	for _, r := range reps {
		cb(r)
	}
}
