// Package core implements the paper's primary contribution as a reusable,
// transport-independent state machine: the local scheduling agent inside the
// timing fault handler (§4, §5.4).
//
// The Scheduler owns the gateway information repository, the response-time
// predictor, and the selection strategy. For each request it:
//
//  1. records the interception time t0 and selects the replica subset K
//     (compensating the deadline by the previously measured algorithm
//     overhead δ, §5.3.3);
//  2. records the transmission time t1 when the caller dispatches;
//  3. on each reply (arrival t4) extracts the piggybacked performance data,
//     updates the repository (service time, queuing delay, queue length, and
//     the derived gateway delay td = t4 − t1 − tq − ts), delivers only the
//     first reply, and discards duplicates after harvesting their data;
//  4. detects timing failures (tr = t4 − t0 > t), maintains the failure
//     counter, and reports when the observed frequency of timely responses
//     drops below the client's requested probability so the gateway can
//     issue the QoS-violation callback (§5.4.2).
//
// Both the real gateway (internal/gateway) and the discrete-event simulator
// (internal/sim) drive this same code; only the clock and the I/O differ.
//
// # Concurrency
//
// The scheduler carries no single global mutex. Pending-request state is
// striped across pendShardCount shards keyed by sequence number, counters are
// atomics, the QoS contract is an atomic pointer, and the decision path reuses
// pooled scratch buffers so the cached path allocates nothing. Only the
// strategy invocation (strategies may be stateful) and the QoS/suspicion
// accounting take short dedicated locks. Lock ordering, where held together:
// shard.mu → stateMu → repository locks; there are no reverse paths.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aqua/internal/metrics"
	"aqua/internal/model"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/wire"
)

// DefaultMinSamplesForViolation is the minimum number of completed requests
// before the observed timely fraction is compared against the client's
// requested probability; it prevents a single early failure from triggering
// the callback.
const DefaultMinSamplesForViolation = 10

// pendShardCount stripes the pending-request table so concurrent callers on
// different requests do not contend. Must be a power of two.
const pendShardCount = 16

// Config configures a Scheduler.
type Config struct {
	// Service is the replicated service this scheduler fronts.
	Service wire.Service
	// QoS is the client's initial QoS specification. It can be renegotiated
	// at runtime via Renegotiate.
	QoS wire.QoS
	// Strategy picks the replica subset; nil defaults to the paper's
	// Algorithm 1.
	Strategy selection.Strategy
	// Predictor computes F_Ri(t); nil defaults to the paper's model.
	Predictor *model.Predictor
	// Repository holds performance history; nil creates one with the
	// default window size.
	Repository *repository.Repository
	// CompensateOverhead enables the §5.3.3 δ term: selection evaluates
	// F_Ri(t − δ) using the previously measured algorithm overhead.
	CompensateOverhead bool
	// FixedOverhead, when positive, is used as δ instead of the measured
	// value. Simulations use it for exact reproducibility.
	FixedOverhead time.Duration
	// StalenessBound, when positive, treats a replica whose last
	// performance update is older than the bound as cold, forcing its
	// inclusion so it gets re-probed (the paper's "active probes"
	// suggestion, §8).
	StalenessBound time.Duration
	// MinSamplesForViolation gates the QoS-violation check; zero means
	// DefaultMinSamplesForViolation.
	MinSamplesForViolation int
	// Overload configures admission control and the degradation ladder
	// (overload.go). The zero value keeps the paper-exact behavior.
	Overload OverloadConfig
	// Lifecycle configures per-replica timing-fault suspicion, quarantine,
	// and probation re-admission (lifecycle.go). The zero value keeps the
	// paper-exact behavior: detection without pool feedback.
	Lifecycle LifecycleConfig
	// Controller, when set, is the online redundancy controller
	// (controller.go): it replaces selection.Budgeted's static load→|K|
	// interpolation on every decision and is fed each request outcome plus
	// the cancel-savings signal from CancelTargets.
	Controller *AdaptiveBudget
	// Metrics receives live counters and histograms (selections, |K|,
	// predicted P_K(t), δ, failures, per-replica response times); nil means
	// the process-wide default registry.
	Metrics *metrics.Registry
	// ReferenceDecisionPath disables the zero-allocation fast path: each
	// decision takes a private repository snapshot, builds a fresh
	// probability table, and re-sorts from scratch — the seed
	// implementation's behavior. Benchmarks use it to measure what the
	// caching, pooling, and incremental ordering buy.
	ReferenceDecisionPath bool
}

// Decision is the outcome of scheduling one request.
//
// Targets may point into a scheduler-owned pooled buffer. The slice is valid
// until Release is called; callers that keep the IDs longer must copy them
// first. Calling Release is optional — a dropped Decision is simply garbage
// collected — but returning the buffer keeps the decision path allocation
// free.
type Decision struct {
	Seq       wire.SeqNo
	Targets   []wire.ReplicaID
	Predicted float64       // P_K(t) per Equation 1
	Overhead  time.Duration // δ measured for this invocation
	UsedAll   bool
	ColdStart bool
	// Mode is the degradation-ladder position the decision was made under.
	Mode Mode
	// Budget is the load-conditioned redundancy cap that applied (zero when
	// unbounded), and BudgetCapped reports that it — or the degraded-mode
	// best-effort cap — truncated the set the algorithm wanted.
	Budget       int
	BudgetCapped bool

	owner *Scheduler // set when Targets is a pooled buffer
}

// Release returns the Decision's Targets buffer to the scheduler's pool and
// nils Targets. Call it at most once, after the caller is done with the
// target list (the scheduler keeps its own copy for reply matching). A
// Decision must be released by at most one holder: Decision is a value type,
// so releasing two copies of the same Decision would hand the same buffer to
// two future callers. After Release, Targets is nil and the old slice
// contents must not be read — the buffer may already be carrying another
// request's targets.
func (d *Decision) Release() {
	o := d.owner
	if o == nil {
		return
	}
	d.owner = nil
	buf := d.Targets
	d.Targets = nil
	o.putIDBuf(buf)
}

// ReplyOutcome describes how one incoming reply was handled.
type ReplyOutcome struct {
	// First is true if this is the first reply for its request: the one
	// delivered to the client. Duplicates are harvested and discarded.
	First bool
	// Duplicate is true for redundant replies (perf data still absorbed).
	Duplicate bool
	// Unknown is true if the reply matched no pending request (already
	// forgotten); it is ignored entirely.
	Unknown bool
	// ResponseTime is tr = t4 − t0, set when First.
	ResponseTime time.Duration
	// TimingFailure is true when First and tr exceeded the deadline, or
	// when the failure was already charged by deadline expiry.
	TimingFailure bool
	// Violation is non-nil when this reply pushed the observed timely
	// fraction below the client's requested probability; the gateway
	// issues the client callback with it.
	Violation *ViolationReport
}

// ViolationReport is handed to the client's QoS callback.
type ViolationReport struct {
	Service          wire.Service
	QoS              wire.QoS
	Completed        uint64
	TimingFailures   uint64
	ObservedTimely   float64
	RequiredTimely   float64
	ConsecutiveFails uint64
}

func (v ViolationReport) String() string {
	return fmt.Sprintf("qos violation on %q: observed timely %.3f < required %.3f (%d failures / %d requests)",
		v.Service, v.ObservedTimely, v.RequiredTimely, v.TimingFailures, v.Completed)
}

// Stats is a snapshot of the scheduler's counters.
type Stats struct {
	Requests         uint64
	Completed        uint64 // requests whose first reply arrived or deadline expired
	Replies          uint64
	Duplicates       uint64
	TimingFailures   uint64
	DeadlineExpiries uint64 // failures charged before any reply arrived
	SelectedTotal    uint64 // sum of |K| across requests, for mean redundancy
	UsedAllCount     uint64
	ConsecutiveFails uint64
	Shed             uint64 // requests refused by admission control
	Degradations     uint64 // degradation-ladder transitions (any direction)
	BudgetCapped     uint64 // selections truncated by a budget or best-effort cap
	Backpressure     uint64 // transport backpressure signals absorbed
	Suspected        uint64 // lifecycle Active → Suspected transitions
	Quarantined      uint64 // lifecycle → Quarantined transitions
	Reinstated       uint64 // lifecycle Suspected → Active recoveries
}

// MeanRedundancy returns the average number of replicas selected per
// request.
func (s Stats) MeanRedundancy() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.SelectedTotal) / float64(s.Requests)
}

// FailureProbability returns the observed probability of timing failures
// over completed requests.
func (s Stats) FailureProbability() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TimingFailures) / float64(s.Completed)
}

// schedStats is the atomic backing store for Stats, updated lock-free on the
// hot path.
type schedStats struct {
	requests         atomic.Uint64
	completed        atomic.Uint64
	replies          atomic.Uint64
	duplicates       atomic.Uint64
	timingFailures   atomic.Uint64
	deadlineExpiries atomic.Uint64
	selectedTotal    atomic.Uint64
	usedAllCount     atomic.Uint64
	consecutiveFails atomic.Uint64
	shed             atomic.Uint64
	degradations     atomic.Uint64
	budgetCapped     atomic.Uint64
	backpressure     atomic.Uint64
	suspected        atomic.Uint64
	quarantined      atomic.Uint64
	reinstated       atomic.Uint64
}

func (c *schedStats) snapshot() Stats {
	return Stats{
		Requests:         c.requests.Load(),
		Completed:        c.completed.Load(),
		Replies:          c.replies.Load(),
		Duplicates:       c.duplicates.Load(),
		TimingFailures:   c.timingFailures.Load(),
		DeadlineExpiries: c.deadlineExpiries.Load(),
		SelectedTotal:    c.selectedTotal.Load(),
		UsedAllCount:     c.usedAllCount.Load(),
		ConsecutiveFails: c.consecutiveFails.Load(),
		Shed:             c.shed.Load(),
		Degradations:     c.degradations.Load(),
		BudgetCapped:     c.budgetCapped.Load(),
		Backpressure:     c.backpressure.Load(),
		Suspected:        c.suspected.Load(),
		Quarantined:      c.quarantined.Load(),
		Reinstated:       c.reinstated.Load(),
	}
}

// pending tracks one in-flight request. The parallel settled/charged slices
// are indexed like targets; linear scans beat maps at realistic |K| (a
// handful of replicas) and recycle with zero garbage.
type pending struct {
	t0             time.Time // interception time
	t1             time.Time // transmission time
	targets        []wire.ReplicaID
	settled        []bool // targets whose repository in-flight count was released
	charged        []bool // targets whose suspicion outcome for this request was recorded
	replies        int
	firstDelivered bool
	failed         bool // timing failure already charged (deadline expiry)
	discounted     bool // removed from the admission count by CancelTargets
	method         string
}

// targetIndex returns the index of id in p.targets, or -1.
func (p *pending) targetIndex(id wire.ReplicaID) int {
	for i := range p.targets {
		if p.targets[i] == id {
			return i
		}
	}
	return -1
}

// resetBools returns b resized to n with every element false, reusing the
// backing array when it is large enough.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// pendShard is one stripe of the pending-request table.
type pendShard struct {
	mu sync.Mutex
	m  map[wire.SeqNo]*pending
	// Pad to a cache line so adjacent shards don't false-share.
	_ [40]byte
}

// schedScratch is the per-decision working set: snapshot copy (only when
// staleness forces a mutation), probability table, and cold list. Recycled
// through a small channel free list — unlike sync.Pool, a channel is not
// emptied by GC cycles mid-benchmark, so the zero-alloc fence is meaningful.
type schedScratch struct {
	snaps []repository.ReplicaSnapshot
	table []model.ReplicaProbability
	cold  []repository.ReplicaSnapshot
}

// schedInstruments are the scheduler's live metrics, resolved once at
// construction so the hot path touches only atomics — no registry lookups.
type schedInstruments struct {
	selections       *metrics.Counter
	errors           *metrics.Counter
	replies          *metrics.Counter
	duplicates       *metrics.Counter
	timingFailures   *metrics.Counter
	deadlineExpiries *metrics.Counter
	violations       *metrics.Counter
	pending          *metrics.Gauge
	targets          *metrics.Histogram
	predicted        *metrics.Histogram
	overhead         *metrics.Histogram
	shed             *metrics.Counter
	degradations     *metrics.Counter
	mode             *metrics.Gauge
	budgetCapped     *metrics.Counter
	backpressure     *metrics.Counter
	budget           *metrics.Histogram
	suspected        *metrics.Counter
	quarantined      *metrics.Counter
	reinstated       *metrics.Counter
	quarantinedNow   *metrics.Gauge
}

func resolveSchedInstruments(r *metrics.Registry) schedInstruments {
	return schedInstruments{
		selections:       r.Counter(metrics.SchedSelections),
		errors:           r.Counter(metrics.SchedErrors),
		replies:          r.Counter(metrics.SchedReplies),
		duplicates:       r.Counter(metrics.SchedDuplicates),
		timingFailures:   r.Counter(metrics.SchedTimingFailures),
		deadlineExpiries: r.Counter(metrics.SchedDeadlineExpiries),
		violations:       r.Counter(metrics.SchedViolations),
		pending:          r.Gauge(metrics.SchedPending),
		targets:          r.Histogram(metrics.SchedTargets, metrics.TargetBuckets),
		predicted:        r.Histogram(metrics.SchedPredicted, metrics.ProbabilityBuckets),
		overhead:         r.Histogram(metrics.SchedOverheadSeconds, metrics.OverheadBuckets),
		shed:             r.Counter(metrics.SchedShed),
		degradations:     r.Counter(metrics.SchedDegradations),
		mode:             r.Gauge(metrics.SchedMode),
		budgetCapped:     r.Counter(metrics.SchedBudgetCapped),
		backpressure:     r.Counter(metrics.SchedBackpressure),
		budget:           r.Histogram(metrics.SchedBudget, metrics.TargetBuckets),
		suspected:        r.Counter(metrics.SchedSuspected),
		quarantined:      r.Counter(metrics.SchedQuarantined),
		reinstated:       r.Counter(metrics.SchedReinstated),
		quarantinedNow:   r.Gauge(metrics.SchedQuarantinedNow),
	}
}

// Scheduler is the timing fault handler's local scheduling agent. It is safe
// for concurrent use.
type Scheduler struct {
	cfg       Config
	repo      *repository.Repository
	predictor *model.Predictor
	strategy  selection.Strategy
	reg       *metrics.Registry
	met       schedInstruments

	// Hot-path state: all lock-free.
	nextSeq        atomic.Uint64
	nPend          atomic.Int64                // pending requests across all shards
	qos            atomic.Pointer[wire.QoS]    // current contract (Renegotiate swaps it)
	lastOverheadNs atomic.Int64                // most recent δ, nanoseconds
	modeA          atomic.Int32                // degradation-ladder position (Mode)
	bpHoldA        atomic.Int64                // completions a backpressure signal still pins the ladder for; mutated under stateMu
	stats          schedStats

	shards [pendShardCount]pendShard

	// stratMu serializes the selection step: strategies may be stateful
	// (RoundRobin, Random) and the per-method Order reuses its previous
	// permutation. Everything before it — snapshot, probability table — runs
	// concurrently.
	stratMu sync.Mutex
	orders  map[string]*selection.Order // per-method incremental candidate order

	// stateMu guards the QoS accounting window, the violation latch, the
	// suspicion windows, and degradation-ladder transitions. Acquired after a
	// shard mutex, never before.
	stateMu   sync.Mutex
	notified  bool // violation callback already fired since last renegotiation
	suspicion map[wire.ReplicaID]*faultWindow // per-replica timing-fault outcomes (lifecycle.go)
	// winCompleted/winFailures are the QoS accounting window: they track
	// Completed/TimingFailures but reset on Renegotiate, so the observed
	// timely fraction is always measured against the QoS it was served
	// under, never against history from a previous contract.
	winCompleted uint64
	winFailures  uint64

	histMu      sync.Mutex
	replicaHist map[wire.ReplicaID]*metrics.Histogram

	// Free lists. Channels, not sync.Pool: the pool is purged by GC at
	// arbitrary points, which both defeats the zero-alloc fence and makes
	// latency bimodal.
	scratchFree chan *schedScratch
	pendFree    chan *pending
	idFree      chan []wire.ReplicaID
}

// NewScheduler returns a scheduler for one (client, service) pair.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.QoS.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Service == "" {
		return nil, fmt.Errorf("core: service name is required")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = selection.NewDynamic()
	}
	if cfg.Predictor == nil {
		cfg.Predictor = model.NewPredictor()
	}
	if cfg.Repository == nil {
		cfg.Repository = repository.New()
	}
	if cfg.MinSamplesForViolation <= 0 {
		cfg.MinSamplesForViolation = DefaultMinSamplesForViolation
	}
	cfg.Overload = cfg.Overload.withDefaults()
	if cfg.Lifecycle.Enabled {
		cfg.Lifecycle = cfg.Lifecycle.withDefaults()
		cfg.Repository.EnableLifecycle(cfg.Lifecycle.ProbationSamples)
		cfg.Repository.RequireStateTransfer(cfg.Lifecycle.RequireStateTransfer)
	}
	reg := metrics.OrDefault(cfg.Metrics)
	s := &Scheduler{
		cfg:         cfg,
		repo:        cfg.Repository,
		predictor:   cfg.Predictor,
		strategy:    cfg.Strategy,
		reg:         reg,
		met:         resolveSchedInstruments(reg),
		orders:      make(map[string]*selection.Order),
		suspicion:   make(map[wire.ReplicaID]*faultWindow),
		replicaHist: make(map[wire.ReplicaID]*metrics.Histogram),
		scratchFree: make(chan *schedScratch, 8),
		pendFree:    make(chan *pending, 256),
		idFree:      make(chan []wire.ReplicaID, 256),
	}
	q := cfg.QoS
	s.qos.Store(&q)
	for i := range s.shards {
		s.shards[i].m = make(map[wire.SeqNo]*pending)
	}
	return s, nil
}

// shard returns the pending-table stripe for a sequence number.
func (s *Scheduler) shard(seq wire.SeqNo) *pendShard {
	return &s.shards[uint64(seq)&(pendShardCount-1)]
}

func (s *Scheduler) getScratch() *schedScratch {
	select {
	case sc := <-s.scratchFree:
		return sc
	default:
		return &schedScratch{}
	}
}

func (s *Scheduler) putScratch(sc *schedScratch) {
	select {
	case s.scratchFree <- sc:
	default:
	}
}

func (s *Scheduler) getPending() *pending {
	select {
	case p := <-s.pendFree:
		return p
	default:
		return &pending{}
	}
}

// putPending recycles a pending entry. The caller must have removed it from
// its shard map and must not touch it afterwards.
func (s *Scheduler) putPending(p *pending) {
	p.t0, p.t1 = time.Time{}, time.Time{}
	p.targets = p.targets[:0]
	p.settled = p.settled[:0]
	p.charged = p.charged[:0]
	p.replies = 0
	p.firstDelivered = false
	p.failed = false
	p.discounted = false
	p.method = ""
	select {
	case s.pendFree <- p:
	default:
	}
}

func (s *Scheduler) getIDBuf() []wire.ReplicaID {
	select {
	case b := <-s.idFree:
		return b[:0]
	default:
		return make([]wire.ReplicaID, 0, 8)
	}
}

func (s *Scheduler) putIDBuf(b []wire.ReplicaID) {
	if cap(b) == 0 {
		return
	}
	select {
	case s.idFree <- b:
	default:
	}
}

// Repository exposes the scheduler's information repository (membership
// updates and tests).
func (s *Scheduler) Repository() *repository.Repository { return s.repo }

// QoS returns the current QoS specification.
func (s *Scheduler) QoS() wire.QoS { return *s.qos.Load() }

// Renegotiate replaces the QoS specification at runtime (§4: the client
// "may ... negotiate it at runtime as often as it wants") and re-arms the
// violation callback. The QoS accounting window resets: completions and
// timing failures recorded under the old contract must not pollute the
// observed-timely fraction compared against the new Pc, which could
// otherwise fire (or suppress) the violation callback spuriously right
// after renegotiation. Cumulative Stats counters are unaffected.
func (s *Scheduler) Renegotiate(q wire.QoS) error {
	if err := q.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.qos.Store(&q)
	s.notified = false
	s.stats.consecutiveFails.Store(0)
	s.winCompleted = 0
	s.winFailures = 0
	if s.cfg.Lifecycle.Enabled {
		// Suspicion was accumulated against the old deadline: an outcome
		// that was "late" under a 10ms contract may be timely under 50ms.
		// Reset the windows like the QoS window, and lift suspicion earned
		// under the old contract. Quarantine stands — a quarantined replica
		// was convicted, not merely suspected, and re-enters via probation.
		s.suspicion = make(map[wire.ReplicaID]*faultWindow)
		for _, snap := range s.repo.Snapshot("") {
			if snap.Health == repository.Suspected {
				s.repo.ClearSuspicion(snap.ID)
			}
		}
	}
	return nil
}

// Schedule runs the selection algorithm for a new request intercepted at t0
// and returns the decision. The caller multicasts the request to
// Decision.Targets and then calls Dispatched with the transmission time t1.
//
// The cached path is allocation-free: the repository snapshot is shared (and
// generation-cached), the probability table and selected set land in pooled
// scratch buffers, and the candidate order is repaired incrementally instead
// of re-sorted. Concurrent callers only serialize on the strategy invocation
// (which may be stateful) and their own pending-table shard.
func (s *Scheduler) Schedule(t0 time.Time, method string) (Decision, error) {
	start := time.Now() // δ is computational overhead: always wall clock
	var reps []DegradationReport

	qos := *s.qos.Load()
	// Admission control: shed before paying for the probability table. The
	// ceiling compares against tracked in-flight requests, so a backlog of
	// unanswered multicasts blocks new work instead of amplifying it.
	if max := s.cfg.Overload.MaxInFlight; max > 0 && int(s.nPend.Load()) >= max {
		n := int(s.nPend.Load())
		s.stats.shed.Add(1)
		s.met.shed.Inc()
		reps = s.evalMode("shed", reps)
		mode := s.Mode()
		s.deliverDegradations(reps)
		return Decision{Mode: mode}, fmt.Errorf("core: %d requests in flight (ceiling %d) for service %q: %w",
			n, max, s.cfg.Service, ErrOverloaded)
	}
	deadline := qos.Deadline
	if s.cfg.CompensateOverhead {
		delta := time.Duration(s.lastOverheadNs.Load())
		if s.cfg.FixedOverhead > 0 {
			delta = s.cfg.FixedOverhead
		}
		// δ is a small correction for the algorithm's own latency. A
		// pathological δ (GC pause, cold caches, or δ ≥ t outright) must not
		// collapse the prediction horizon to 0: F_Ri(0) is 0 for every
		// replica, which degenerates every selection into "all of M" churn.
		// Cap the compensation at half the deadline so selection stays
		// discriminating.
		if delta > deadline/2 {
			delta = deadline / 2
		}
		deadline -= delta
	}

	if exp := s.cfg.Lifecycle.QuarantineExpiry; exp > 0 {
		// Second-chance path for deployments without a dependability manager:
		// quarantine older than the expiry converts to probation. Wall clock,
		// like the quarantine stamp itself.
		s.repo.Parole(time.Now().Add(-exp))
	}

	reference := s.cfg.ReferenceDecisionPath
	var sc *schedScratch
	var snaps []repository.ReplicaSnapshot
	if reference {
		snaps = s.repo.Snapshot(method) // private copy, freely mutable
	} else {
		sc = s.getScratch()
		snaps = s.repo.SnapshotShared(method) // shared: read-only
	}
	if s.cfg.Lifecycle.Enabled {
		// Quarantined and probation replicas are not candidates: not for the
		// probability table, not for the select-all fallback, and not for the
		// staleness re-probe below (live traffic is not how they come back).
		snaps = selectableSnapshots(snaps)
	}
	if staleness := s.cfg.StalenessBound; staleness > 0 {
		stale := false
		for i := range snaps {
			if snaps[i].HasHistory && t0.Sub(snaps[i].LastUpdate) > staleness {
				stale = true
				break
			}
		}
		if stale {
			if !reference {
				// The shared snapshot is immutable; copy before flipping bits.
				sc.snaps = append(sc.snaps[:0], snaps...)
				snaps = sc.snaps
			}
			for i := range snaps {
				if snaps[i].HasHistory && t0.Sub(snaps[i].LastUpdate) > staleness {
					// Force a probe of the stale replica by treating it as cold.
					snaps[i].HasHistory = false
				}
			}
		}
	}

	var table []model.ReplicaProbability
	var cold []repository.ReplicaSnapshot
	var err error
	if len(snaps) == 0 {
		err = fmt.Errorf("core: no replicas available for service %q", s.cfg.Service)
	} else if reference {
		table, cold, err = s.predictor.ProbabilityTable(snaps, deadline)
	} else {
		table, cold, err = s.predictor.ProbabilityTableInto(snaps, deadline, sc.table[:0], sc.cold[:0])
		sc.table, sc.cold = table, cold // keep grown buffers for reuse
	}
	if err != nil {
		// Record δ on every outcome, including failures: a transient
		// predictor error must not leave a stale δ compensating the next
		// request's deadline.
		s.lastOverheadNs.Store(int64(time.Since(start)))
		s.met.errors.Inc()
		if sc != nil {
			s.putScratch(sc)
		}
		if len(snaps) != 0 {
			err = fmt.Errorf("core: predicting response times: %w", err)
		}
		return Decision{}, err
	}

	// The strategy invocation is the only serialized step: strategies may be
	// stateful, and the per-method Order repairs its previous permutation.
	s.stratMu.Lock()
	in := selection.Input{Table: table, Cold: cold, QoS: qos, SelectedBuf: s.getIDBuf()}
	if s.cfg.Controller != nil {
		in.Controller = s.cfg.Controller
	}
	if !reference {
		ord := s.orders[method]
		if ord == nil {
			ord = selection.NewOrder()
			s.orders[method] = ord
		}
		in.Sorted = ord.Sort(table)
		// The shared snapshot's InFlight fields lag the live counters (they
		// refresh per performance report, not per dispatch); hand
		// load-conditioned strategies the current total instead.
		in.LiveInFlight = s.repo.InFlightSum(snaps)
		in.HasLiveInFlight = true
	}
	res := s.strategy.Select(in)
	s.stratMu.Unlock()

	ovh := time.Since(start)
	s.lastOverheadNs.Store(int64(ovh))
	if len(res.Selected) == 0 {
		s.met.errors.Inc()
		s.putIDBuf(res.Selected)
		if sc != nil {
			s.putScratch(sc)
		}
		return Decision{}, fmt.Errorf("core: strategy %q selected no replicas", s.strategy.Name())
	}

	// While degraded, the line-15 "no subset reaches Pc(t) → all of M"
	// fallback is replaced with a best-effort set: Pc is unreachable either
	// way, and fanning out to everyone is exactly the |M|× amplification
	// that deepens the overload. The selected list is ordered by decreasing
	// F_Ri(t), so truncating keeps the m0 reserve's shape (Eq. 3) with the
	// best remaining replica.
	capped := res.Capped
	if k := s.cfg.Overload.BestEffortK; Mode(s.modeA.Load()) != ModeNormal && res.UsedAll && k > 0 && len(res.Selected) > k {
		res.Selected = res.Selected[:k]
		res.Predicted = predictedFor(table, res.Selected)
		capped = true
	}
	if capped {
		s.stats.budgetCapped.Add(1)
		s.met.budgetCapped.Inc()
	}
	if res.Budget > 0 {
		s.met.budget.Observe(float64(res.Budget))
	}

	seq := wire.SeqNo(s.nextSeq.Add(1) - 1)
	p := s.getPending()
	p.t0 = t0
	p.method = method
	p.targets = append(p.targets[:0], res.Selected...)
	p.settled = resetBools(p.settled, len(p.targets))
	p.charged = resetBools(p.charged, len(p.targets))
	s.repo.NoteDispatchedAll(p.targets)
	sh := s.shard(seq)
	sh.mu.Lock()
	sh.m[seq] = p
	sh.mu.Unlock()
	s.nPend.Add(1)

	s.stats.requests.Add(1)
	s.stats.selectedTotal.Add(uint64(len(res.Selected)))
	if s.cfg.Controller != nil {
		s.cfg.Controller.NoteSelected(len(res.Selected))
	}
	if res.UsedAll {
		s.stats.usedAllCount.Add(1)
	}
	s.met.selections.Inc()
	s.met.pending.Add(1)
	s.met.targets.Observe(float64(len(res.Selected)))
	s.met.predicted.Observe(res.Predicted)
	s.met.overhead.ObserveDuration(ovh)
	reps = s.evalMode("schedule", reps)
	if sc != nil {
		s.putScratch(sc)
	}
	s.deliverDegradations(reps)
	return Decision{
		Seq:          seq,
		Targets:      res.Selected,
		Predicted:    res.Predicted,
		Overhead:     ovh,
		UsedAll:      res.UsedAll,
		ColdStart:    res.ColdStart,
		Mode:         Mode(s.modeA.Load()),
		Budget:       res.Budget,
		BudgetCapped: capped,
		owner:        s,
	}, nil
}

// predictedFor recomputes Equation 1 over a truncated selection. Cold
// replicas (absent from the table) contribute nothing, exactly as in the
// strategy's own accounting.
func predictedFor(table []model.ReplicaProbability, selected []wire.ReplicaID) float64 {
	miss := 1.0
	for _, id := range selected {
		for i := range table {
			if table[i].Snapshot.ID == id {
				miss *= 1 - table[i].Probability
				break
			}
		}
	}
	return 1 - miss
}

// Dispatched records the transmission time t1 for a scheduled request.
func (s *Scheduler) Dispatched(seq wire.SeqNo, t1 time.Time) error {
	sh := s.shard(seq)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.m[seq]
	if !ok {
		return fmt.Errorf("core: dispatched unknown request %d", seq)
	}
	p.t1 = t1
	return nil
}

// OnReply processes a reply from a replica arriving at time t4. It updates
// the information repository from the piggybacked performance report,
// computes the new gateway delay, and — for the first reply — evaluates the
// timing-failure predicate.
func (s *Scheduler) OnReply(seq wire.SeqNo, replica wire.ReplicaID, t4 time.Time, perf wire.PerfReport) ReplyOutcome {
	var reps []DegradationReport
	var sreps []SuspectReport
	qos := *s.qos.Load()

	sh := s.shard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if !ok {
		sh.mu.Unlock()
		return ReplyOutcome{Unknown: true}
	}
	ti := p.targetIndex(replica)
	if ti < 0 {
		// A reply from a replica we never asked: ignore, but don't poison
		// the repository with a mismatched t1.
		sh.mu.Unlock()
		return ReplyOutcome{Unknown: true}
	}
	if s.cfg.Lifecycle.Enabled && !p.charged[ti] {
		// One suspicion outcome per (request, replica): this reply's, unless
		// a deadline expiry already charged the replica for this request.
		p.charged[ti] = true
		sreps = s.recordOutcome(replica, t4.Sub(p.t0) > qos.Deadline, sreps)
	}
	if !p.settled[ti] {
		// First word from this copy: its contribution to the replica's
		// in-flight load is over.
		p.settled[ti] = true
		s.repo.NoteSettled(replica)
	}
	s.stats.replies.Add(1)
	p.replies++
	s.met.replies.Inc()
	s.replicaResponse(replica).ObserveDuration(t4.Sub(p.t0))

	// Harvest performance data from every reply, duplicates included
	// (§5.4.1): record (ts, tq, queue length) and the derived round-trip
	// gateway delay td = t4 − t1 − tq − ts. Both endpoints of every
	// interval are measured on one machine, so no clock synchronization is
	// needed.
	s.repo.RecordPerf(replica, p.method, perf, t4)
	if !p.t1.IsZero() {
		td := t4.Sub(p.t1) - perf.QueueDelay - perf.ServiceTime
		s.repo.RecordGatewayDelay(replica, td)
	}

	out := ReplyOutcome{}
	if p.firstDelivered {
		out.Duplicate = true
		s.stats.duplicates.Add(1)
		s.met.duplicates.Inc()
		if p.replies >= len(p.targets) {
			reps = s.dropLocked(sh, seq, p, reps)
		}
		sh.mu.Unlock()
		s.deliverDegradations(reps)
		s.deliverSuspects(sreps)
		return out
	}
	p.firstDelivered = true
	out.First = true
	out.ResponseTime = t4.Sub(p.t0)

	alreadyCharged := p.failed
	failed := out.ResponseTime > qos.Deadline
	out.TimingFailure = failed || alreadyCharged
	if !alreadyCharged {
		// A deadline expiry already finalized the accounting for this
		// request; a late first reply must not complete it twice.
		s.complete(failed, &out)
	}
	if p.replies >= len(p.targets) {
		reps = s.dropLocked(sh, seq, p, reps)
	}
	sh.mu.Unlock()
	s.deliverDegradations(reps)
	s.deliverSuspects(sreps)
	return out
}

// replicaResponse returns the per-replica response-time histogram, creating
// it on the replica's first reply; after that the registry is not consulted
// again for that replica.
func (s *Scheduler) replicaResponse(id wire.ReplicaID) *metrics.Histogram {
	s.histMu.Lock()
	h, ok := s.replicaHist[id]
	if !ok {
		h = s.reg.Histogram(metrics.Label(metrics.ReplicaResponseSeconds, "replica", string(id)), metrics.LatencyBuckets)
		s.replicaHist[id] = h
	}
	s.histMu.Unlock()
	return h
}

// dropLocked removes one tracked request from its shard, releases any
// still-unsettled in-flight contributions (targets that never replied),
// keeps the pending gauge in step, re-evaluates the degradation ladder, and
// recycles the entry. Caller holds sh.mu and must not touch p afterwards.
func (s *Scheduler) dropLocked(sh *pendShard, seq wire.SeqNo, p *pending, reps []DegradationReport) []DegradationReport {
	for i := range p.targets {
		if !p.settled[i] {
			s.repo.NoteSettled(p.targets[i])
		}
	}
	delete(sh.m, seq)
	if !p.discounted {
		// CancelTargets already removed a cancelled request from the
		// admission count; discounting it twice would let the in-flight
		// ceiling drift.
		s.nPend.Add(-1)
		s.met.pending.Add(-1)
		reps = s.evalMode("complete", reps)
	}
	s.putPending(p)
	return reps
}

// CancelTargets settles every selected replica that has not yet replied for
// seq and returns their IDs appended to buf — the fan-out list for a
// first-response-wins wire.Cancel. It is a no-op (returning buf unchanged)
// unless the first reply has already been delivered.
//
// For each cancelled target the repository in-flight contribution is
// released now (the copy will never reply) and the suspicion outcome is
// marked recorded, so obedient silence at the deadline is not charged as a
// timing fault. The pending entry itself stays until Forget so straggler
// replies already in flight are still harvested as duplicates, but it is
// discounted from the admission count — a cancelled request holds no
// capacity.
func (s *Scheduler) CancelTargets(seq wire.SeqNo, buf []wire.ReplicaID) []wire.ReplicaID {
	var reps []DegradationReport
	sh := s.shard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if !ok || !p.firstDelivered {
		sh.mu.Unlock()
		return buf
	}
	start := len(buf)
	for i := range p.targets {
		if p.settled[i] {
			continue
		}
		buf = append(buf, p.targets[i])
		p.settled[i] = true
		s.repo.NoteSettled(p.targets[i])
		p.charged[i] = true
	}
	if !p.discounted {
		p.discounted = true
		s.nPend.Add(-1)
		s.met.pending.Add(-1)
		reps = s.evalMode("complete", reps)
	}
	sh.mu.Unlock()
	if s.cfg.Controller != nil && len(buf) > start {
		s.cfg.Controller.NoteCancelled(len(buf) - start)
	}
	s.deliverDegradations(reps)
	return buf
}

// OnDeadlineExpired charges a timing failure for a request whose deadline
// passed with no reply at all (e.g. every selected replica crashed). A late
// first reply will still be delivered but the failure is not double-counted.
// It returns a violation report exactly as OnReply would.
func (s *Scheduler) OnDeadlineExpired(seq wire.SeqNo) *ViolationReport {
	var sreps []SuspectReport
	sh := s.shard(seq)
	sh.mu.Lock()
	p, ok := sh.m[seq]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	// Per-replica suspicion is charged before the early return below: even
	// when a first reply already arrived (timely request, straggling copies),
	// every target silent at the deadline earned a late outcome.
	sreps = s.chargeExpiredTargets(p, sreps)
	if p.firstDelivered || p.failed {
		sh.mu.Unlock()
		s.deliverSuspects(sreps)
		return nil
	}
	p.failed = true
	s.stats.deadlineExpiries.Add(1)
	s.met.deadlineExpiries.Inc()
	var out ReplyOutcome
	s.complete(true, &out)
	sh.mu.Unlock()
	s.deliverSuspects(sreps)
	return out.Violation
}

// complete finalizes the failure accounting for one request and evaluates
// the QoS-violation predicate (§5.4.2) over the current QoS accounting
// window (winCompleted/winFailures, reset by Renegotiate). It takes stateMu;
// callers may hold a shard mutex.
func (s *Scheduler) complete(failed bool, out *ReplyOutcome) {
	if c := s.cfg.Controller; c != nil {
		// Feed the budget climb first, outside stateMu; the controller's
		// lock nests under nothing of the scheduler's.
		c.OnOutcome(!failed)
	}
	qos := *s.qos.Load()
	s.stateMu.Lock()
	s.stats.completed.Add(1)
	s.winCompleted++
	if h := s.bpHoldA.Load(); h > 0 {
		// A clean completion is evidence the transport is draining again.
		s.bpHoldA.Store(h - 1)
	}
	if failed {
		s.stats.timingFailures.Add(1)
		s.winFailures++
		s.stats.consecutiveFails.Add(1)
		s.met.timingFailures.Inc()
	} else {
		s.stats.consecutiveFails.Store(0)
	}
	if s.notified || s.winCompleted < uint64(s.cfg.MinSamplesForViolation) {
		s.stateMu.Unlock()
		return
	}
	observed := 1 - float64(s.winFailures)/float64(s.winCompleted)
	if observed < qos.MinProbability {
		out.Violation = &ViolationReport{
			Service:          s.cfg.Service,
			QoS:              qos,
			Completed:        s.winCompleted,
			TimingFailures:   s.winFailures,
			ObservedTimely:   observed,
			RequiredTimely:   qos.MinProbability,
			ConsecutiveFails: s.stats.consecutiveFails.Load(),
		}
		s.notified = true
		s.met.violations.Inc()
	}
	s.stateMu.Unlock()
}

// Forget drops the pending state for a request (e.g. after a grace period
// for straggler duplicates). Safe to call for unknown sequence numbers.
func (s *Scheduler) Forget(seq wire.SeqNo) {
	var reps []DegradationReport
	sh := s.shard(seq)
	sh.mu.Lock()
	if p, ok := sh.m[seq]; ok {
		reps = s.dropLocked(sh, seq, p, reps)
	}
	sh.mu.Unlock()
	s.deliverDegradations(reps)
}

// Outstanding returns the number of in-flight requests being tracked.
func (s *Scheduler) Outstanding() int { return int(s.nPend.Load()) }

// OnMembershipChange reconciles the repository against a new group view.
// Crashed replicas disappear from future selections (§5.4). It also sweeps
// pending requests whose entire target set left the view: no reply can ever
// arrive for them, so without the sweep their tracking state would leak
// forever in deployments that never fire OnDeadlineExpired or Forget. Swept
// requests past their deadline are charged as deadline expiries; the first
// resulting QoS violation (if any) is returned so the caller can surface it.
func (s *Scheduler) OnMembershipChange(members []wire.ReplicaID) *ViolationReport {
	return s.OnMembershipChangeAt(members, time.Now())
}

// OnMembershipChangeAt is OnMembershipChange with an explicit sweep time, so
// drivers with virtual clocks (the simulator) charge deadline expiries
// against their own notion of now.
func (s *Scheduler) OnMembershipChangeAt(members []wire.ReplicaID, now time.Time) *ViolationReport {
	s.repo.SetMembership(members)
	// Membership churn can recreate a replica's windows; dropping the
	// memoized distributions keeps the predictor from holding entries that
	// can never be hit again.
	s.predictor.FlushCache()

	alive := make(map[wire.ReplicaID]bool, len(members))
	for _, id := range members {
		alive[id] = true
	}
	qos := *s.qos.Load()
	var degs []DegradationReport
	// Suspicion windows of departed replicas go with them; a replica that
	// later rejoins under the same ID is judged on fresh evidence.
	s.stateMu.Lock()
	for id := range s.suspicion {
		if !alive[id] {
			delete(s.suspicion, id)
		}
	}
	s.stateMu.Unlock()
	var report *ViolationReport
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for seq, p := range sh.m {
			doomed := true
			for _, id := range p.targets {
				if alive[id] {
					doomed = false
					break
				}
			}
			if !doomed {
				continue
			}
			if !p.firstDelivered && !p.failed && now.Sub(p.t0) > qos.Deadline {
				p.failed = true
				s.stats.deadlineExpiries.Add(1)
				s.met.deadlineExpiries.Inc()
				var out ReplyOutcome
				s.complete(true, &out)
				if report == nil {
					report = out.Violation
				}
			}
			degs = s.dropLocked(sh, seq, p, degs)
		}
		sh.mu.Unlock()
	}
	s.deliverDegradations(degs)
	return report
}

// OnPerfUpdate absorbs a pushed performance update from a replica (the
// publish/subscribe path, as opposed to piggybacked reply data).
func (s *Scheduler) OnPerfUpdate(u wire.PerfUpdate, now time.Time) {
	s.repo.RecordPerf(u.Replica, u.Method, u.Perf, now)
}

// LastOverhead returns the most recently measured selection overhead δ.
func (s *Scheduler) LastOverhead() time.Duration {
	return time.Duration(s.lastOverheadNs.Load())
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats { return s.stats.snapshot() }
