// Package core implements the paper's primary contribution as a reusable,
// transport-independent state machine: the local scheduling agent inside the
// timing fault handler (§4, §5.4).
//
// The Scheduler owns the gateway information repository, the response-time
// predictor, and the selection strategy. For each request it:
//
//  1. records the interception time t0 and selects the replica subset K
//     (compensating the deadline by the previously measured algorithm
//     overhead δ, §5.3.3);
//  2. records the transmission time t1 when the caller dispatches;
//  3. on each reply (arrival t4) extracts the piggybacked performance data,
//     updates the repository (service time, queuing delay, queue length, and
//     the derived gateway delay td = t4 − t1 − tq − ts), delivers only the
//     first reply, and discards duplicates after harvesting their data;
//  4. detects timing failures (tr = t4 − t0 > t), maintains the failure
//     counter, and reports when the observed frequency of timely responses
//     drops below the client's requested probability so the gateway can
//     issue the QoS-violation callback (§5.4.2).
//
// Both the real gateway (internal/gateway) and the discrete-event simulator
// (internal/sim) drive this same code; only the clock and the I/O differ.
package core

import (
	"fmt"
	"sync"
	"time"

	"aqua/internal/metrics"
	"aqua/internal/model"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/wire"
)

// DefaultMinSamplesForViolation is the minimum number of completed requests
// before the observed timely fraction is compared against the client's
// requested probability; it prevents a single early failure from triggering
// the callback.
const DefaultMinSamplesForViolation = 10

// Config configures a Scheduler.
type Config struct {
	// Service is the replicated service this scheduler fronts.
	Service wire.Service
	// QoS is the client's initial QoS specification. It can be renegotiated
	// at runtime via Renegotiate.
	QoS wire.QoS
	// Strategy picks the replica subset; nil defaults to the paper's
	// Algorithm 1.
	Strategy selection.Strategy
	// Predictor computes F_Ri(t); nil defaults to the paper's model.
	Predictor *model.Predictor
	// Repository holds performance history; nil creates one with the
	// default window size.
	Repository *repository.Repository
	// CompensateOverhead enables the §5.3.3 δ term: selection evaluates
	// F_Ri(t − δ) using the previously measured algorithm overhead.
	CompensateOverhead bool
	// FixedOverhead, when positive, is used as δ instead of the measured
	// value. Simulations use it for exact reproducibility.
	FixedOverhead time.Duration
	// StalenessBound, when positive, treats a replica whose last
	// performance update is older than the bound as cold, forcing its
	// inclusion so it gets re-probed (the paper's "active probes"
	// suggestion, §8).
	StalenessBound time.Duration
	// MinSamplesForViolation gates the QoS-violation check; zero means
	// DefaultMinSamplesForViolation.
	MinSamplesForViolation int
	// Overload configures admission control and the degradation ladder
	// (overload.go). The zero value keeps the paper-exact behavior.
	Overload OverloadConfig
	// Lifecycle configures per-replica timing-fault suspicion, quarantine,
	// and probation re-admission (lifecycle.go). The zero value keeps the
	// paper-exact behavior: detection without pool feedback.
	Lifecycle LifecycleConfig
	// Metrics receives live counters and histograms (selections, |K|,
	// predicted P_K(t), δ, failures, per-replica response times); nil means
	// the process-wide default registry.
	Metrics *metrics.Registry
}

// Decision is the outcome of scheduling one request.
type Decision struct {
	Seq       wire.SeqNo
	Targets   []wire.ReplicaID
	Predicted float64       // P_K(t) per Equation 1
	Overhead  time.Duration // δ measured for this invocation
	UsedAll   bool
	ColdStart bool
	// Mode is the degradation-ladder position the decision was made under.
	Mode Mode
	// Budget is the load-conditioned redundancy cap that applied (zero when
	// unbounded), and BudgetCapped reports that it — or the degraded-mode
	// best-effort cap — truncated the set the algorithm wanted.
	Budget       int
	BudgetCapped bool
}

// ReplyOutcome describes how one incoming reply was handled.
type ReplyOutcome struct {
	// First is true if this is the first reply for its request: the one
	// delivered to the client. Duplicates are harvested and discarded.
	First bool
	// Duplicate is true for redundant replies (perf data still absorbed).
	Duplicate bool
	// Unknown is true if the reply matched no pending request (already
	// forgotten); it is ignored entirely.
	Unknown bool
	// ResponseTime is tr = t4 − t0, set when First.
	ResponseTime time.Duration
	// TimingFailure is true when First and tr exceeded the deadline, or
	// when the failure was already charged by deadline expiry.
	TimingFailure bool
	// Violation is non-nil when this reply pushed the observed timely
	// fraction below the client's requested probability; the gateway
	// issues the client callback with it.
	Violation *ViolationReport
}

// ViolationReport is handed to the client's QoS callback.
type ViolationReport struct {
	Service          wire.Service
	QoS              wire.QoS
	Completed        uint64
	TimingFailures   uint64
	ObservedTimely   float64
	RequiredTimely   float64
	ConsecutiveFails uint64
}

func (v ViolationReport) String() string {
	return fmt.Sprintf("qos violation on %q: observed timely %.3f < required %.3f (%d failures / %d requests)",
		v.Service, v.ObservedTimely, v.RequiredTimely, v.TimingFailures, v.Completed)
}

// Stats is a snapshot of the scheduler's counters.
type Stats struct {
	Requests         uint64
	Completed        uint64 // requests whose first reply arrived or deadline expired
	Replies          uint64
	Duplicates       uint64
	TimingFailures   uint64
	DeadlineExpiries uint64 // failures charged before any reply arrived
	SelectedTotal    uint64 // sum of |K| across requests, for mean redundancy
	UsedAllCount     uint64
	ConsecutiveFails uint64
	Shed             uint64 // requests refused by admission control
	Degradations     uint64 // degradation-ladder transitions (any direction)
	BudgetCapped     uint64 // selections truncated by a budget or best-effort cap
	Backpressure     uint64 // transport backpressure signals absorbed
	Suspected        uint64 // lifecycle Active → Suspected transitions
	Quarantined      uint64 // lifecycle → Quarantined transitions
	Reinstated       uint64 // lifecycle Suspected → Active recoveries
}

// MeanRedundancy returns the average number of replicas selected per
// request.
func (s Stats) MeanRedundancy() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.SelectedTotal) / float64(s.Requests)
}

// FailureProbability returns the observed probability of timing failures
// over completed requests.
func (s Stats) FailureProbability() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.TimingFailures) / float64(s.Completed)
}

// pending tracks one in-flight request.
type pending struct {
	t0             time.Time // interception time
	t1             time.Time // transmission time
	targets        map[wire.ReplicaID]bool
	settled        map[wire.ReplicaID]bool // targets whose repository in-flight count was released
	charged        map[wire.ReplicaID]bool // targets whose suspicion outcome for this request was recorded
	replies        int
	firstDelivered bool
	failed         bool // timing failure already charged (deadline expiry)
	method         string
}

// schedInstruments are the scheduler's live metrics, resolved once at
// construction so the hot path touches only atomics — no registry lookups.
type schedInstruments struct {
	selections       *metrics.Counter
	errors           *metrics.Counter
	replies          *metrics.Counter
	duplicates       *metrics.Counter
	timingFailures   *metrics.Counter
	deadlineExpiries *metrics.Counter
	violations       *metrics.Counter
	pending          *metrics.Gauge
	targets          *metrics.Histogram
	predicted        *metrics.Histogram
	overhead         *metrics.Histogram
	shed             *metrics.Counter
	degradations     *metrics.Counter
	mode             *metrics.Gauge
	budgetCapped     *metrics.Counter
	backpressure     *metrics.Counter
	budget           *metrics.Histogram
	suspected        *metrics.Counter
	quarantined      *metrics.Counter
	reinstated       *metrics.Counter
	quarantinedNow   *metrics.Gauge
}

func resolveSchedInstruments(r *metrics.Registry) schedInstruments {
	return schedInstruments{
		selections:       r.Counter(metrics.SchedSelections),
		errors:           r.Counter(metrics.SchedErrors),
		replies:          r.Counter(metrics.SchedReplies),
		duplicates:       r.Counter(metrics.SchedDuplicates),
		timingFailures:   r.Counter(metrics.SchedTimingFailures),
		deadlineExpiries: r.Counter(metrics.SchedDeadlineExpiries),
		violations:       r.Counter(metrics.SchedViolations),
		pending:          r.Gauge(metrics.SchedPending),
		targets:          r.Histogram(metrics.SchedTargets, metrics.TargetBuckets),
		predicted:        r.Histogram(metrics.SchedPredicted, metrics.ProbabilityBuckets),
		overhead:         r.Histogram(metrics.SchedOverheadSeconds, metrics.OverheadBuckets),
		shed:             r.Counter(metrics.SchedShed),
		degradations:     r.Counter(metrics.SchedDegradations),
		mode:             r.Gauge(metrics.SchedMode),
		budgetCapped:     r.Counter(metrics.SchedBudgetCapped),
		backpressure:     r.Counter(metrics.SchedBackpressure),
		budget:           r.Histogram(metrics.SchedBudget, metrics.TargetBuckets),
		suspected:        r.Counter(metrics.SchedSuspected),
		quarantined:      r.Counter(metrics.SchedQuarantined),
		reinstated:       r.Counter(metrics.SchedReinstated),
		quarantinedNow:   r.Gauge(metrics.SchedQuarantinedNow),
	}
}

// Scheduler is the timing fault handler's local scheduling agent. It is safe
// for concurrent use.
type Scheduler struct {
	mu        sync.Mutex
	cfg       Config
	repo      *repository.Repository
	predictor *model.Predictor
	strategy  selection.Strategy
	reg       *metrics.Registry
	met       schedInstruments

	nextSeq      wire.SeqNo
	pend         map[wire.SeqNo]*pending
	replicaHist  map[wire.ReplicaID]*metrics.Histogram
	suspicion    map[wire.ReplicaID]*faultWindow // per-replica timing-fault outcomes (lifecycle.go)
	lastOverhead time.Duration
	stats        Stats
	notified     bool // violation callback already fired since last renegotiation
	mode         Mode // degradation-ladder position (overload.go)
	bpHold       int  // completions a backpressure signal still pins the ladder for
	// winCompleted/winFailures are the QoS accounting window: they track
	// Completed/TimingFailures but reset on Renegotiate, so the observed
	// timely fraction is always measured against the QoS it was served
	// under, never against history from a previous contract.
	winCompleted uint64
	winFailures  uint64
}

// NewScheduler returns a scheduler for one (client, service) pair.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if err := cfg.QoS.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Service == "" {
		return nil, fmt.Errorf("core: service name is required")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = selection.NewDynamic()
	}
	if cfg.Predictor == nil {
		cfg.Predictor = model.NewPredictor()
	}
	if cfg.Repository == nil {
		cfg.Repository = repository.New()
	}
	if cfg.MinSamplesForViolation <= 0 {
		cfg.MinSamplesForViolation = DefaultMinSamplesForViolation
	}
	cfg.Overload = cfg.Overload.withDefaults()
	if cfg.Lifecycle.Enabled {
		cfg.Lifecycle = cfg.Lifecycle.withDefaults()
		cfg.Repository.EnableLifecycle(cfg.Lifecycle.ProbationSamples)
	}
	reg := metrics.OrDefault(cfg.Metrics)
	return &Scheduler{
		cfg:         cfg,
		repo:        cfg.Repository,
		predictor:   cfg.Predictor,
		strategy:    cfg.Strategy,
		reg:         reg,
		met:         resolveSchedInstruments(reg),
		pend:        make(map[wire.SeqNo]*pending),
		replicaHist: make(map[wire.ReplicaID]*metrics.Histogram),
		suspicion:   make(map[wire.ReplicaID]*faultWindow),
	}, nil
}

// Repository exposes the scheduler's information repository (membership
// updates and tests).
func (s *Scheduler) Repository() *repository.Repository { return s.repo }

// QoS returns the current QoS specification.
func (s *Scheduler) QoS() wire.QoS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.QoS
}

// Renegotiate replaces the QoS specification at runtime (§4: the client
// "may ... negotiate it at runtime as often as it wants") and re-arms the
// violation callback. The QoS accounting window resets: completions and
// timing failures recorded under the old contract must not pollute the
// observed-timely fraction compared against the new Pc, which could
// otherwise fire (or suppress) the violation callback spuriously right
// after renegotiation. Cumulative Stats counters are unaffected.
func (s *Scheduler) Renegotiate(q wire.QoS) error {
	if err := q.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.QoS = q
	s.notified = false
	s.stats.ConsecutiveFails = 0
	s.winCompleted = 0
	s.winFailures = 0
	if s.cfg.Lifecycle.Enabled {
		// Suspicion was accumulated against the old deadline: an outcome
		// that was "late" under a 10ms contract may be timely under 50ms.
		// Reset the windows like the QoS window, and lift suspicion earned
		// under the old contract. Quarantine stands — a quarantined replica
		// was convicted, not merely suspected, and re-enters via probation.
		s.suspicion = make(map[wire.ReplicaID]*faultWindow)
		for _, snap := range s.repo.Snapshot("") {
			if snap.Health == repository.Suspected {
				s.repo.ClearSuspicion(snap.ID)
			}
		}
	}
	return nil
}

// Schedule runs the selection algorithm for a new request intercepted at t0
// and returns the decision. The caller multicasts the request to
// Decision.Targets and then calls Dispatched with the transmission time t1.
//
// The probability-table computation — the dominant cost, the paper's δ —
// runs outside the scheduler's mutex: the repository snapshot and the
// predictor are internally synchronized, so concurrent Schedule calls only
// serialize on the cheap bookkeeping (sequence allocation, stats, and the
// strategy invocation, which may be stateful).
func (s *Scheduler) Schedule(t0 time.Time, method string) (Decision, error) {
	start := time.Now() // δ is computational overhead: always wall clock

	// Degradation callbacks fire after every lock below is released (defers
	// run LIFO, so this one runs last).
	var reps []DegradationReport
	defer func() { s.deliverDegradations(reps) }()

	s.mu.Lock()
	// Admission control: shed before paying for the probability table. The
	// ceiling compares against tracked in-flight requests, so a backlog of
	// unanswered multicasts blocks new work instead of amplifying it.
	if max := s.cfg.Overload.MaxInFlight; max > 0 && len(s.pend) >= max {
		n := len(s.pend)
		s.stats.Shed++
		s.met.shed.Inc()
		s.evalModeLocked("shed", &reps)
		mode := s.mode
		s.mu.Unlock()
		return Decision{Mode: mode}, fmt.Errorf("core: %d requests in flight (ceiling %d) for service %q: %w",
			n, max, s.cfg.Service, ErrOverloaded)
	}
	qos := s.cfg.QoS
	deadline := qos.Deadline
	if s.cfg.CompensateOverhead {
		delta := s.lastOverhead
		if s.cfg.FixedOverhead > 0 {
			delta = s.cfg.FixedOverhead
		}
		// δ is a small correction for the algorithm's own latency. A
		// pathological δ (GC pause, cold caches, or δ ≥ t outright) must not
		// collapse the prediction horizon to 0: F_Ri(0) is 0 for every
		// replica, which degenerates every selection into "all of M" churn.
		// Cap the compensation at half the deadline so selection stays
		// discriminating.
		if delta > deadline/2 {
			delta = deadline / 2
		}
		deadline -= delta
	}
	staleness := s.cfg.StalenessBound
	s.mu.Unlock()

	if exp := s.cfg.Lifecycle.QuarantineExpiry; exp > 0 {
		// Second-chance path for deployments without a dependability manager:
		// quarantine older than the expiry converts to probation. Wall clock,
		// like the quarantine stamp itself.
		s.repo.Parole(time.Now().Add(-exp))
	}
	snaps := s.repo.Snapshot(method)
	if s.cfg.Lifecycle.Enabled {
		// Quarantined and probation replicas are not candidates: not for the
		// probability table, not for the select-all fallback, and not for the
		// staleness re-probe below (live traffic is not how they come back).
		snaps = selectableSnapshots(snaps)
	}
	if staleness > 0 {
		for i := range snaps {
			if snaps[i].HasHistory && t0.Sub(snaps[i].LastUpdate) > staleness {
				// Force a probe of the stale replica by treating it as cold.
				snaps[i].HasHistory = false
			}
		}
	}
	var table []model.ReplicaProbability
	var cold []repository.ReplicaSnapshot
	var err error
	if len(snaps) == 0 {
		err = fmt.Errorf("core: no replicas available for service %q", s.cfg.Service)
	} else {
		table, cold, err = s.predictor.ProbabilityTable(snaps, deadline)
		if err != nil {
			err = fmt.Errorf("core: predicting response times: %w", err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Record δ on every outcome, including failures: a transient predictor
	// or strategy error must not leave a stale δ compensating the next
	// request's deadline.
	if err != nil {
		s.lastOverhead = time.Since(start)
		s.met.errors.Inc()
		return Decision{}, err
	}
	res := s.strategy.Select(selection.Input{Table: table, Cold: cold, QoS: qos})
	s.lastOverhead = time.Since(start)
	if len(res.Selected) == 0 {
		s.met.errors.Inc()
		return Decision{}, fmt.Errorf("core: strategy %q selected no replicas", s.strategy.Name())
	}

	// While degraded, the line-15 "no subset reaches Pc(t) → all of M"
	// fallback is replaced with a best-effort set: Pc is unreachable either
	// way, and fanning out to everyone is exactly the |M|× amplification
	// that deepens the overload. The selected list is ordered by decreasing
	// F_Ri(t), so truncating keeps the m0 reserve's shape (Eq. 3) with the
	// best remaining replica.
	capped := res.Capped
	if k := s.cfg.Overload.BestEffortK; s.mode != ModeNormal && res.UsedAll && k > 0 && len(res.Selected) > k {
		res.Selected = res.Selected[:k]
		res.Predicted = predictedFor(table, res.Selected)
		capped = true
	}
	if capped {
		s.stats.BudgetCapped++
		s.met.budgetCapped.Inc()
	}
	if res.Budget > 0 {
		s.met.budget.Observe(float64(res.Budget))
	}

	seq := s.nextSeq
	s.nextSeq++
	targets := make(map[wire.ReplicaID]bool, len(res.Selected))
	for _, id := range res.Selected {
		targets[id] = true
		s.repo.NoteDispatched(id)
	}
	s.pend[seq] = &pending{
		t0:      t0,
		targets: targets,
		settled: make(map[wire.ReplicaID]bool, len(targets)),
		charged: make(map[wire.ReplicaID]bool, len(targets)),
		method:  method,
	}
	s.stats.Requests++
	s.stats.SelectedTotal += uint64(len(res.Selected))
	if res.UsedAll {
		s.stats.UsedAllCount++
	}
	s.met.selections.Inc()
	s.met.pending.Add(1)
	s.met.targets.Observe(float64(len(res.Selected)))
	s.met.predicted.Observe(res.Predicted)
	s.met.overhead.ObserveDuration(s.lastOverhead)
	s.evalModeLocked("schedule", &reps)
	return Decision{
		Seq:          seq,
		Targets:      res.Selected,
		Predicted:    res.Predicted,
		Overhead:     s.lastOverhead,
		UsedAll:      res.UsedAll,
		ColdStart:    res.ColdStart,
		Mode:         s.mode,
		Budget:       res.Budget,
		BudgetCapped: capped,
	}, nil
}

// predictedFor recomputes Equation 1 over a truncated selection. Cold
// replicas (absent from the table) contribute nothing, exactly as in the
// strategy's own accounting.
func predictedFor(table []model.ReplicaProbability, selected []wire.ReplicaID) float64 {
	probs := make(map[wire.ReplicaID]float64, len(table))
	for _, rp := range table {
		probs[rp.Snapshot.ID] = rp.Probability
	}
	miss := 1.0
	for _, id := range selected {
		if p, ok := probs[id]; ok {
			miss *= 1 - p
		}
	}
	return 1 - miss
}

// Dispatched records the transmission time t1 for a scheduled request.
func (s *Scheduler) Dispatched(seq wire.SeqNo, t1 time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pend[seq]
	if !ok {
		return fmt.Errorf("core: dispatched unknown request %d", seq)
	}
	p.t1 = t1
	return nil
}

// OnReply processes a reply from a replica arriving at time t4. It updates
// the information repository from the piggybacked performance report,
// computes the new gateway delay, and — for the first reply — evaluates the
// timing-failure predicate.
func (s *Scheduler) OnReply(seq wire.SeqNo, replica wire.ReplicaID, t4 time.Time, perf wire.PerfReport) ReplyOutcome {
	var reps []DegradationReport
	var sreps []SuspectReport
	defer func() {
		s.deliverDegradations(reps)
		s.deliverSuspects(sreps)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()

	p, ok := s.pend[seq]
	if !ok {
		return ReplyOutcome{Unknown: true}
	}
	if !p.targets[replica] {
		// A reply from a replica we never asked: ignore, but don't poison
		// the repository with a mismatched t1.
		return ReplyOutcome{Unknown: true}
	}
	if s.cfg.Lifecycle.Enabled && !p.charged[replica] {
		// One suspicion outcome per (request, replica): this reply's, unless
		// a deadline expiry already charged the replica for this request.
		p.charged[replica] = true
		s.recordOutcomeLocked(replica, t4.Sub(p.t0) > s.cfg.QoS.Deadline, &sreps)
	}
	if !p.settled[replica] {
		// First word from this copy: its contribution to the replica's
		// in-flight load is over.
		p.settled[replica] = true
		s.repo.NoteSettled(replica)
	}
	s.stats.Replies++
	p.replies++
	s.met.replies.Inc()
	s.replicaResponseLocked(replica).ObserveDuration(t4.Sub(p.t0))

	// Harvest performance data from every reply, duplicates included
	// (§5.4.1): record (ts, tq, queue length) and the derived round-trip
	// gateway delay td = t4 − t1 − tq − ts. Both endpoints of every
	// interval are measured on one machine, so no clock synchronization is
	// needed.
	s.repo.RecordPerf(replica, p.method, perf, t4)
	if !p.t1.IsZero() {
		td := t4.Sub(p.t1) - perf.QueueDelay - perf.ServiceTime
		s.repo.RecordGatewayDelay(replica, p.method, td)
	}

	out := ReplyOutcome{}
	if p.firstDelivered {
		out.Duplicate = true
		s.stats.Duplicates++
		s.met.duplicates.Inc()
		if p.replies >= len(p.targets) {
			s.dropPendingLocked(seq, &reps)
		}
		return out
	}
	p.firstDelivered = true
	out.First = true
	out.ResponseTime = t4.Sub(p.t0)

	alreadyCharged := p.failed
	failed := out.ResponseTime > s.cfg.QoS.Deadline
	out.TimingFailure = failed || alreadyCharged
	if !alreadyCharged {
		// A deadline expiry already finalized the accounting for this
		// request; a late first reply must not complete it twice.
		s.completeLocked(failed, &out)
	}
	if p.replies >= len(p.targets) {
		s.dropPendingLocked(seq, &reps)
	}
	return out
}

// replicaResponseLocked returns the per-replica response-time histogram,
// creating it on the replica's first reply. Caller holds s.mu; after the
// first lookup the registry is not consulted again for that replica.
func (s *Scheduler) replicaResponseLocked(id wire.ReplicaID) *metrics.Histogram {
	h, ok := s.replicaHist[id]
	if !ok {
		h = s.reg.Histogram(metrics.Label(metrics.ReplicaResponseSeconds, "replica", string(id)), metrics.LatencyBuckets)
		s.replicaHist[id] = h
	}
	return h
}

// dropPendingLocked removes one tracked request, releases any still-unsettled
// in-flight contributions (targets that never replied), keeps the pending
// gauge in step, and re-evaluates the degradation ladder now that the
// in-flight count dropped. Caller holds s.mu; the seq must exist.
func (s *Scheduler) dropPendingLocked(seq wire.SeqNo, reps *[]DegradationReport) {
	if p, ok := s.pend[seq]; ok {
		for id := range p.targets {
			if !p.settled[id] {
				s.repo.NoteSettled(id)
			}
		}
	}
	delete(s.pend, seq)
	s.met.pending.Add(-1)
	s.evalModeLocked("complete", reps)
}

// OnDeadlineExpired charges a timing failure for a request whose deadline
// passed with no reply at all (e.g. every selected replica crashed). A late
// first reply will still be delivered but the failure is not double-counted.
// It returns a violation report exactly as OnReply would.
func (s *Scheduler) OnDeadlineExpired(seq wire.SeqNo) *ViolationReport {
	var sreps []SuspectReport
	defer func() { s.deliverSuspects(sreps) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pend[seq]
	if !ok {
		return nil
	}
	// Per-replica suspicion is charged before the early return below: even
	// when a first reply already arrived (timely request, straggling copies),
	// every target silent at the deadline earned a late outcome.
	s.chargeExpiredTargetsLocked(p, &sreps)
	if p.firstDelivered || p.failed {
		return nil
	}
	p.failed = true
	s.stats.DeadlineExpiries++
	s.met.deadlineExpiries.Inc()
	var out ReplyOutcome
	s.completeLocked(true, &out)
	return out.Violation
}

// completeLocked finalizes the failure accounting for one request and
// evaluates the QoS-violation predicate (§5.4.2) over the current QoS
// accounting window (winCompleted/winFailures, reset by Renegotiate).
func (s *Scheduler) completeLocked(failed bool, out *ReplyOutcome) {
	s.stats.Completed++
	s.winCompleted++
	if s.bpHold > 0 {
		// A clean completion is evidence the transport is draining again.
		s.bpHold--
	}
	if failed {
		s.stats.TimingFailures++
		s.winFailures++
		s.stats.ConsecutiveFails++
		s.met.timingFailures.Inc()
	} else {
		s.stats.ConsecutiveFails = 0
	}
	if s.notified || s.winCompleted < uint64(s.cfg.MinSamplesForViolation) {
		return
	}
	observed := 1 - float64(s.winFailures)/float64(s.winCompleted)
	if observed < s.cfg.QoS.MinProbability {
		out.Violation = &ViolationReport{
			Service:          s.cfg.Service,
			QoS:              s.cfg.QoS,
			Completed:        s.winCompleted,
			TimingFailures:   s.winFailures,
			ObservedTimely:   observed,
			RequiredTimely:   s.cfg.QoS.MinProbability,
			ConsecutiveFails: s.stats.ConsecutiveFails,
		}
		s.notified = true
		s.met.violations.Inc()
	}
}

// Forget drops the pending state for a request (e.g. after a grace period
// for straggler duplicates). Safe to call for unknown sequence numbers.
func (s *Scheduler) Forget(seq wire.SeqNo) {
	var reps []DegradationReport
	defer func() { s.deliverDegradations(reps) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pend[seq]; ok {
		s.dropPendingLocked(seq, &reps)
	}
}

// Outstanding returns the number of in-flight requests being tracked.
func (s *Scheduler) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pend)
}

// OnMembershipChange reconciles the repository against a new group view.
// Crashed replicas disappear from future selections (§5.4). It also sweeps
// pending requests whose entire target set left the view: no reply can ever
// arrive for them, so without the sweep their tracking state would leak
// forever in deployments that never fire OnDeadlineExpired or Forget. Swept
// requests past their deadline are charged as deadline expiries; the first
// resulting QoS violation (if any) is returned so the caller can surface it.
func (s *Scheduler) OnMembershipChange(members []wire.ReplicaID) *ViolationReport {
	return s.OnMembershipChangeAt(members, time.Now())
}

// OnMembershipChangeAt is OnMembershipChange with an explicit sweep time, so
// drivers with virtual clocks (the simulator) charge deadline expiries
// against their own notion of now.
func (s *Scheduler) OnMembershipChangeAt(members []wire.ReplicaID, now time.Time) *ViolationReport {
	s.repo.SetMembership(members)
	// Membership churn can recreate a replica's windows; dropping the
	// memoized distributions keeps the predictor from holding entries that
	// can never be hit again.
	s.predictor.FlushCache()

	alive := make(map[wire.ReplicaID]bool, len(members))
	for _, id := range members {
		alive[id] = true
	}
	var degs []DegradationReport
	defer func() { s.deliverDegradations(degs) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Suspicion windows of departed replicas go with them; a replica that
	// later rejoins under the same ID is judged on fresh evidence.
	for id := range s.suspicion {
		if !alive[id] {
			delete(s.suspicion, id)
		}
	}
	var report *ViolationReport
	for seq, p := range s.pend {
		doomed := true
		for id := range p.targets {
			if alive[id] {
				doomed = false
				break
			}
		}
		if !doomed {
			continue
		}
		if !p.firstDelivered && !p.failed && now.Sub(p.t0) > s.cfg.QoS.Deadline {
			p.failed = true
			s.stats.DeadlineExpiries++
			s.met.deadlineExpiries.Inc()
			var out ReplyOutcome
			s.completeLocked(true, &out)
			if report == nil {
				report = out.Violation
			}
		}
		s.dropPendingLocked(seq, &degs)
	}
	return report
}

// OnPerfUpdate absorbs a pushed performance update from a replica (the
// publish/subscribe path, as opposed to piggybacked reply data).
func (s *Scheduler) OnPerfUpdate(u wire.PerfUpdate, now time.Time) {
	s.repo.RecordPerf(u.Replica, u.Method, u.Perf, now)
}

// LastOverhead returns the most recently measured selection overhead δ.
func (s *Scheduler) LastOverhead() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastOverhead
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
