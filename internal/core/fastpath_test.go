package core

// Fences for the zero-allocation decision path: the cached path must not
// allocate, must agree exactly with the reference (seed) decision path, and
// the pooled Decision buffers must be race-free under concurrent
// schedule/release/reply traffic.

import (
	"fmt"
	"testing"
	"time"

	"aqua/internal/repository"
	"aqua/internal/wire"
)

// variedRepo builds a repository whose replicas have distinct deterministic
// histories, so selection produces a non-trivial proper subset.
func variedRepo(t testing.TB, n int) *repository.Repository {
	t.Helper()
	repo := repository.New()
	base := time.Now()
	for i := 0; i < n; i++ {
		id := wire.ReplicaID(rune('a' + i))
		repo.AddReplica(id)
		svc := time.Duration(5+3*i) * ms
		for j := 0; j < repository.DefaultWindowSize; j++ {
			repo.RecordPerf(id, "", wire.PerfReport{ServiceTime: svc, QueueDelay: ms}, base)
		}
		repo.RecordGatewayDelay(id, ms)
	}
	return repo
}

// TestScheduleCachedPathZeroAllocs is the tentpole fence: once the scratch
// pools, snapshot cache, and predictor cache are warm, a full
// schedule → release → forget cycle performs zero heap allocations.
func TestScheduleCachedPathZeroAllocs(t *testing.T) {
	repo := variedRepo(t, 5)
	s, err := NewScheduler(Config{
		Service:            "svc",
		QoS:                wire.QoS{Deadline: 60 * ms, MinProbability: 0.95},
		Repository:         repo,
		CompensateOverhead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	cycle := func() {
		d, err := s.Schedule(t0, "")
		if err != nil {
			t.Fatal(err)
		}
		seq := d.Seq
		d.Release()
		s.Forget(seq)
	}
	for i := 0; i < 10; i++ {
		cycle() // warm caches, pools, and map buckets
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("cached schedule/release/forget cycle allocated %.1f times per run, want 0", allocs)
	}
}

// TestReferencePathMatchesCachedPath checks decision-for-decision equivalence
// between the zero-alloc cached path and the reference path (private
// snapshots, fresh tables, per-request sort): same targets, bit-identical
// P_K(t), across membership-stable and perturbed rounds.
func TestReferencePathMatchesCachedPath(t *testing.T) {
	repo := variedRepo(t, 6)
	q := wire.QoS{Deadline: 60 * ms, MinProbability: 0.95}
	fast, err := NewScheduler(Config{Service: "svc", QoS: q, Repository: repo})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewScheduler(Config{Service: "svc", QoS: q, Repository: repo, ReferenceDecisionPath: true})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for round := 0; round < 100; round++ {
		if round%3 == 1 {
			// Perturb one replica's window so the candidate order moves.
			id := wire.ReplicaID(rune('a' + round%6))
			svc := time.Duration(4+round%20) * ms
			repo.RecordPerf(id, "", wire.PerfReport{ServiceTime: svc, QueueDelay: ms}, now)
		}
		df, errF := fast.Schedule(now, "")
		dr, errR := ref.Schedule(now, "")
		if (errF == nil) != (errR == nil) {
			t.Fatalf("round %d: error mismatch: fast=%v ref=%v", round, errF, errR)
		}
		if errF != nil {
			continue
		}
		if fmt.Sprint(df.Targets) != fmt.Sprint(dr.Targets) {
			t.Fatalf("round %d: targets diverged: fast=%v ref=%v", round, df.Targets, dr.Targets)
		}
		if df.Predicted != dr.Predicted {
			t.Fatalf("round %d: predicted diverged: fast=%v ref=%v", round, df.Predicted, dr.Predicted)
		}
		if df.UsedAll != dr.UsedAll || df.ColdStart != dr.ColdStart {
			t.Fatalf("round %d: flags diverged: fast=%+v ref=%+v", round, df, dr)
		}
		fast.Forget(df.Seq)
		ref.Forget(dr.Seq)
		df.Release()
		dr.Release()
	}
}

// TestDecisionReleaseRace hammers the pooled-buffer lifecycle from many
// goroutines — schedule, read targets, reply, release, forget — so the race
// detector can see any reuse-before-release hazard in the free lists.
func TestDecisionReleaseRace(t *testing.T) {
	repo := variedRepo(t, 4)
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 60 * ms, MinProbability: 0.95},
		Repository: repo,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			now := time.Now()
			for i := 0; i < 300; i++ {
				d, err := s.Schedule(now, "")
				if err != nil {
					done <- err
					return
				}
				// Read every target before Release: the race detector flags
				// this load if the buffer is ever recycled early.
				var sink wire.ReplicaID
				for _, id := range d.Targets {
					sink = id
				}
				out := s.OnReply(d.Seq, sink, now.Add(5*ms), wire.PerfReport{ServiceTime: 5 * ms, QueueDelay: ms})
				if out.Unknown {
					done <- fmt.Errorf("reply to own request reported unknown")
					return
				}
				seq := d.Seq
				d.Release()
				s.Forget(seq)
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Outstanding(); got != 0 {
		t.Errorf("Outstanding() = %d after all work settled, want 0", got)
	}
}

// BenchmarkScheduleCachedPath measures the per-decision cost of the cached
// path (the throughput experiment drives the same cycle).
func BenchmarkScheduleCachedPath(b *testing.B) {
	repo := variedRepo(b, 5)
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 60 * ms, MinProbability: 0.95},
		Repository: repo,
	})
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.Schedule(t0, "")
		if err != nil {
			b.Fatal(err)
		}
		seq := d.Seq
		d.Release()
		s.Forget(seq)
	}
}

// BenchmarkScheduleReferencePath is the same cycle through the seed-style
// decision path, for the speedup comparison in BENCH_throughput.json.
func BenchmarkScheduleReferencePath(b *testing.B) {
	repo := variedRepo(b, 5)
	s, err := NewScheduler(Config{
		Service:               "svc",
		QoS:                   wire.QoS{Deadline: 60 * ms, MinProbability: 0.95},
		Repository:            repo,
		ReferenceDecisionPath: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.Schedule(t0, "")
		if err != nil {
			b.Fatal(err)
		}
		seq := d.Seq
		d.Release()
		s.Forget(seq)
	}
}
