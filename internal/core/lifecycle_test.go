package core

import (
	"testing"
	"time"

	"aqua/internal/repository"
	"aqua/internal/wire"
)

// lifecycleSched builds a scheduler over a warm 3-replica pool whose
// deterministic history misses the deadline, so Algorithm 1's line-15
// fallback selects all of M on every request: every replica earns exactly
// one suspicion outcome per request, controlled by the test.
func lifecycleSched(t *testing.T, lc LifecycleConfig) *Scheduler {
	t.Helper()
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	lc.Enabled = true
	s, err := NewScheduler(Config{
		Service:    "svc",
		QoS:        wire.QoS{Deadline: 5 * ms, MinProbability: 0.9},
		Repository: repo,
		Lifecycle:  lc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// roundtrip schedules one request and replies from every target: lateFrom
// replicas answer past the deadline, the rest answer timely. The perf
// report repeats the warm history so selection stays in the select-all
// regime.
func roundtrip(t *testing.T, s *Scheduler, lateFrom map[wire.ReplicaID]bool) Decision {
	t.Helper()
	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	perf := wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms}
	for _, id := range d.Targets {
		t4 := t0.Add(ms)
		if lateFrom[id] {
			t4 = t0.Add(50 * ms)
		}
		s.OnReply(d.Seq, id, t4, perf)
	}
	return d
}

func targetsContain(d Decision, id wire.ReplicaID) bool {
	for _, t := range d.Targets {
		if t == id {
			return true
		}
	}
	return false
}

func TestPersistentlySlowReplicaQuarantined(t *testing.T) {
	var reports []SuspectReport
	s := lifecycleSched(t, LifecycleConfig{
		WindowSize:      4,
		MinObservations: 4,
		OnSuspect:       func(r SuspectReport) { reports = append(reports, r) },
	})

	for i := 0; i < 4; i++ {
		d := roundtrip(t, s, map[wire.ReplicaID]bool{"a": true})
		if !targetsContain(d, "a") {
			t.Fatalf("round %d: fallback did not select a; targets %v", i, d.Targets)
		}
	}

	if h, _ := s.Repository().Health("a"); h != repository.Quarantined {
		t.Fatalf("Health(a) = %v, want Quarantined after a full window of late replies", h)
	}
	if len(reports) != 1 || reports[0].To != repository.Quarantined || reports[0].Replica != "a" {
		t.Fatalf("reports = %v, want one Active→Quarantined for a", reports)
	}
	if reports[0].FaultRate != 1 {
		t.Errorf("FaultRate = %v, want 1", reports[0].FaultRate)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}

	// Quarantined replicas are excluded even from the select-all fallback.
	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if targetsContain(d, "a") {
		t.Errorf("quarantined replica selected: %v", d.Targets)
	}
	if len(d.Targets) != 2 {
		t.Errorf("targets = %v, want the 2 healthy replicas", d.Targets)
	}
	s.Forget(d.Seq)
}

func TestSuspectedReplicaClearsOnRecovery(t *testing.T) {
	var reports []SuspectReport
	s := lifecycleSched(t, LifecycleConfig{
		WindowSize:      4,
		MinObservations: 4,
		OnSuspect:       func(r SuspectReport) { reports = append(reports, r) },
	})

	// Alternate late/timely: rate settles at 0.5 → Suspected, not
	// Quarantined.
	for i := 0; i < 4; i++ {
		roundtrip(t, s, map[wire.ReplicaID]bool{"a": i%2 == 0})
	}
	if h, _ := s.Repository().Health("a"); h != repository.Suspected {
		t.Fatalf("Health(a) = %v, want Suspected at rate 0.5", h)
	}
	// Suspected replicas stay selectable.
	d := roundtrip(t, s, nil)
	if !targetsContain(d, "a") {
		t.Errorf("suspected replica dropped from selection: %v", d.Targets)
	}
	// That timely round pushed the window to [late, timely, timely(?) ...]:
	// keep answering timely until the rate falls to ClearRate.
	roundtrip(t, s, nil)
	if h, _ := s.Repository().Health("a"); h != repository.Active {
		t.Fatalf("Health(a) = %v, want Active after recovery", h)
	}
	if len(reports) != 2 || reports[0].To != repository.Suspected || reports[1].To != repository.Active {
		t.Fatalf("reports = %v, want Suspected then Active", reports)
	}
	if st := s.Stats(); st.Suspected != 1 || st.Reinstated != 1 {
		t.Errorf("stats = %+v, want Suspected=1 Reinstated=1", st)
	}
}

func TestDeadlineExpiryChargesTargetsOnce(t *testing.T) {
	s := lifecycleSched(t, LifecycleConfig{WindowSize: 8, MinObservations: 8})

	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	// Deadline passes with no reply: every target charged one late outcome.
	s.OnDeadlineExpired(d.Seq)
	// The straggler replies arrive afterwards — late, but already charged:
	// they must not add a second outcome for the same request.
	perf := wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms}
	for _, id := range d.Targets {
		s.OnReply(d.Seq, id, t0.Add(60*ms), perf)
	}
	if n := s.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d after all replies, want 0 (pending leak)", n)
	}
	for _, w := range s.suspicion {
		if w.n() != 1 {
			t.Fatalf("suspicion window holds %d outcomes, want 1 (double charge)", w.n())
		}
	}
	// 7 more expiry-only rounds reach the 8-observation window: quarantine
	// fires now and not earlier, proving the single charge per request.
	for i := 0; i < 7; i++ {
		d, err := s.Schedule(time.Now(), "")
		if err != nil {
			t.Fatal(err)
		}
		before := s.Repository().QuarantinedCount()
		if i < 6 && before != 0 {
			t.Fatalf("round %d: quarantined early (double-charged outcomes)", i)
		}
		s.OnDeadlineExpired(d.Seq)
		s.Forget(d.Seq)
	}
	if n := s.Repository().QuarantinedCount(); n == 0 {
		t.Error("no replica quarantined after 8 charged expiries")
	}
}

func TestQuarantineMidFlightSettlesPending(t *testing.T) {
	s := lifecycleSched(t, LifecycleConfig{WindowSize: 4, MinObservations: 4})

	// A request is in flight to all three replicas when "a" is convicted by
	// other traffic.
	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		roundtrip(t, s, map[wire.ReplicaID]bool{"a": true})
	}
	if h, _ := s.Repository().Health("a"); h != repository.Quarantined {
		t.Fatalf("Health(a) = %v, want Quarantined", h)
	}
	// The in-flight request still settles normally: quarantine removes a
	// replica from future selections, not from membership.
	perf := wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms}
	var firsts int
	for _, id := range d.Targets {
		if out := s.OnReply(d.Seq, id, t0.Add(ms), perf); out.First {
			firsts++
		}
	}
	if firsts != 1 {
		t.Errorf("firsts = %d, want exactly 1 delivery", firsts)
	}
	if n := s.Outstanding(); n != 0 {
		t.Fatalf("Outstanding = %d, want 0 (pending leak across quarantine)", n)
	}
	for _, snap := range s.Repository().Snapshot("") {
		if snap.InFlight != 0 {
			t.Errorf("replica %s InFlight = %d, want 0", snap.ID, snap.InFlight)
		}
	}
}

func TestRenegotiateResetsSuspicion(t *testing.T) {
	s := lifecycleSched(t, LifecycleConfig{WindowSize: 4, MinObservations: 4})

	for i := 0; i < 4; i++ {
		roundtrip(t, s, map[wire.ReplicaID]bool{"a": i%2 == 0})
	}
	if h, _ := s.Repository().Health("a"); h != repository.Suspected {
		t.Fatalf("Health(a) = %v, want Suspected", h)
	}
	if err := s.Renegotiate(wire.QoS{Deadline: 200 * ms, MinProbability: 0.9}); err != nil {
		t.Fatal(err)
	}
	// Suspicion earned under the old deadline is lifted, windows are empty.
	if h, _ := s.Repository().Health("a"); h != repository.Active {
		t.Fatalf("Health(a) = %v, want Active after renegotiation", h)
	}
	if len(s.suspicion) != 0 {
		t.Errorf("suspicion windows survived renegotiation: %d", len(s.suspicion))
	}
}

func TestMembershipChangePrunesSuspicionAndStartsProbation(t *testing.T) {
	s := lifecycleSched(t, LifecycleConfig{WindowSize: 8, MinObservations: 8})

	roundtrip(t, s, map[wire.ReplicaID]bool{"a": true}) // seed a's window
	if len(s.suspicion) == 0 {
		t.Fatal("no suspicion windows after a round trip")
	}
	// Bootstrap view, then a leaves.
	s.OnMembershipChangeAt([]wire.ReplicaID{"a", "b", "c"}, time.Now())
	s.OnMembershipChangeAt([]wire.ReplicaID{"b", "c"}, time.Now())
	if _, ok := s.suspicion["a"]; ok {
		t.Error("departed replica kept its suspicion window")
	}
	// A rejoining replica is a newcomer: probation, excluded from selection.
	s.OnMembershipChangeAt([]wire.ReplicaID{"a", "b", "c"}, time.Now())
	if h, _ := s.Repository().Health("a"); h != repository.Probation {
		t.Fatalf("Health(a) = %v, want Probation for post-bootstrap rejoin", h)
	}
	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if targetsContain(d, "a") {
		t.Errorf("probation replica selected: %v", d.Targets)
	}
	s.Forget(d.Seq)
	// Probe-fed perf reports promote it; default ProbationSamples is the
	// repository window size.
	for i := 0; i < repository.DefaultProbationSamples; i++ {
		s.Repository().RecordPerf("a", "", wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms}, time.Now())
	}
	if h, _ := s.Repository().Health("a"); h != repository.Active {
		t.Fatalf("Health(a) = %v, want Active after MinSamples probe reports", h)
	}
}

func TestAllQuarantinedFallsBackToFullSet(t *testing.T) {
	s := lifecycleSched(t, LifecycleConfig{WindowSize: 4, MinObservations: 4})
	for _, id := range []wire.ReplicaID{"a", "b", "c"} {
		s.Repository().Quarantine(id, time.Now())
	}
	// Availability beats quarantine: with every member sick, selection uses
	// the full set rather than failing.
	d, err := s.Schedule(time.Now(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 3 {
		t.Errorf("targets = %v, want all 3 under total quarantine", d.Targets)
	}
	s.Forget(d.Seq)
}

func TestLifecycleDisabledKeepsBehavior(t *testing.T) {
	repo := warmRepo(t, 3, 10*ms, 2*ms, ms)
	s := newSched(t, repo, wire.QoS{Deadline: 5 * ms, MinProbability: 0.9})
	t0 := time.Now()
	d, err := s.Schedule(t0, "")
	if err != nil {
		t.Fatal(err)
	}
	s.OnDeadlineExpired(d.Seq)
	for _, id := range d.Targets {
		s.OnReply(d.Seq, id, t0.Add(50*ms), wire.PerfReport{ServiceTime: 10 * ms, QueueDelay: 2 * ms})
	}
	if len(s.suspicion) != 0 {
		t.Error("suspicion accounting ran with lifecycle disabled")
	}
	if repo.LifecycleEnabled() {
		t.Error("repository lifecycle enabled without config")
	}
}
