package core

// Online redundancy controller: replaces the hand-set load→|K| interpolation
// of selection.Budgeted with a measured set-point search. The idea follows
// Poloczek & Ciucu (replication flips from latency-reducing to
// goodput-destroying past a load threshold) and Raaijmakers et al. (the
// optimal redundancy degree shifts with the service-time tail): no static
// budget is right at every operating point, but goodput as a function of
// |K| is unimodal enough at a fixed load that a bounded hill climb with
// hysteresis finds and tracks the maximizing budget.
//
// Signals, all already measured by the scheduler:
//
//   - timely completions per second (the goodput being maximized), windowed
//     over fixed-size epochs of completed requests;
//   - the per-replica outstanding level from the PR 4 in-flight tracking,
//     used only as an emergency clamp — a saturated pool drops the budget to
//     the floor immediately instead of waiting for the climb;
//   - the cancel-savings rate (cancelled dispatches / selected dispatches):
//     when first-response-wins cancellation reclaims most duplicate work,
//     extra redundancy is cheap, so exploration is biased upward.

import (
	"sync"
	"sync/atomic"
	"time"

	"aqua/internal/selection"
)

// Defaults for AdaptiveBudgetConfig zero values.
const (
	// DefaultControllerEpoch is the number of completed requests per
	// measurement epoch: long enough that a goodput rate is meaningful,
	// short enough to track load swings within a few hundred requests.
	DefaultControllerEpoch = 48
	// DefaultControllerHysteresis is the relative goodput change required
	// to count as an improvement or a regression; smaller differences hold
	// the current budget, keeping measurement noise from walking it.
	DefaultControllerHysteresis = 0.08
	// DefaultOverloadPerReplica is the per-replica outstanding level at
	// which the controller stops searching and clamps to the floor: the
	// pool is saturated and any extra duplicate is pure queueing.
	DefaultOverloadPerReplica = 6.0
	// controllerProbeAfterHolds is how many consecutive held epochs pass
	// before the controller probes a step anyway — the optimum may have
	// moved while goodput sat inside the hysteresis band.
	controllerProbeAfterHolds = 3
	// controllerCancelCheapRate is the cancel-savings rate above which
	// probing prefers the upward direction.
	controllerCancelCheapRate = 0.5
)

// AdaptiveBudgetConfig configures the controller.
type AdaptiveBudgetConfig struct {
	// MinK floors the budget; values below selection.MinBudget (the m0
	// reserve plus one worker) are raised to it, so the Equation 3 crash
	// guarantee survives the harshest setting.
	MinK int
	// MaxK caps the budget; required (there is no pool-size default because
	// the controller never sees the membership).
	MaxK int
	// Epoch is the completions per measurement window; 0 means
	// DefaultControllerEpoch.
	Epoch int
	// Hysteresis is the relative goodput dead band; 0 means
	// DefaultControllerHysteresis.
	Hysteresis float64
	// OverloadPerReplica is the emergency-clamp threshold; 0 means
	// DefaultOverloadPerReplica.
	OverloadPerReplica float64
	// Clock supplies the time base for goodput rates; nil means time.Now.
	// The simulator passes its virtual clock so epochs measure simulated
	// seconds.
	Clock func() time.Time
}

// AdaptiveBudget is an online |K| budget controller implementing
// selection.BudgetController. BudgetFor is called on the scheduler's
// decision path and reads one atomic; the climb itself runs on completion
// events under a small dedicated mutex (never the scheduler's shard or
// state locks).
type AdaptiveBudget struct {
	cfg AdaptiveBudgetConfig

	budget  atomic.Int64 // current |K| budget, read on the decision path
	clamped atomic.Bool  // overload clamp hit this epoch; taints its rate

	mu         sync.Mutex
	dir        int  // +1 or −1: direction of the last step
	holds      int  // consecutive epochs inside the dead band
	primed     bool // first epoch discarded (its window starts mid-stream)
	epochStart time.Time
	completed  int     // completions this epoch
	timely     int     // timely completions this epoch
	prevRate   float64 // smoothed goodput of the previous settled epoch
	hasPrev    bool

	selected  atomic.Uint64 // dispatches fanned out (NoteSelected)
	cancelled atomic.Uint64 // dispatches reclaimed by cancel (NoteCancelled)

	stepsUp   atomic.Uint64
	stepsDown atomic.Uint64
	heldCount atomic.Uint64
	clamps    atomic.Uint64
}

var _ selection.BudgetController = (*AdaptiveBudget)(nil)

// NewAdaptiveBudget returns a controller starting at the budget ceiling
// (low load wants full redundancy; the climb walks it down if that hurts).
func NewAdaptiveBudget(cfg AdaptiveBudgetConfig) *AdaptiveBudget {
	if cfg.MinK < selection.MinBudget {
		cfg.MinK = selection.MinBudget
	}
	if cfg.MaxK < cfg.MinK {
		cfg.MaxK = cfg.MinK
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = DefaultControllerEpoch
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = DefaultControllerHysteresis
	}
	if cfg.OverloadPerReplica <= 0 {
		cfg.OverloadPerReplica = DefaultOverloadPerReplica
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &AdaptiveBudget{cfg: cfg, dir: +1}
	c.budget.Store(int64(cfg.MaxK))
	return c
}

// BudgetFor implements selection.BudgetController: the current set point,
// with an emergency clamp to the floor when the pool is saturated beyond
// doubt. The clamp taints the running epoch so a rate measured half in and
// half out of clamp never steers the climb.
func (c *AdaptiveBudget) BudgetFor(perReplicaOutstanding float64, n int) int {
	if perReplicaOutstanding >= c.cfg.OverloadPerReplica {
		if !c.clamped.Swap(true) {
			c.clamps.Add(1)
		}
		return c.cfg.MinK
	}
	return int(c.budget.Load())
}

// Budget returns the controller's current set point.
func (c *AdaptiveBudget) Budget() int { return int(c.budget.Load()) }

// NoteSelected records a decision's fan-out degree (the denominator of the
// cancel-savings rate).
func (c *AdaptiveBudget) NoteSelected(k int) {
	if k > 0 {
		c.selected.Add(uint64(k))
	}
}

// NoteCancelled records dispatches reclaimed by first-response-wins
// cancellation before they became replies.
func (c *AdaptiveBudget) NoteCancelled(n int) {
	if n > 0 {
		c.cancelled.Add(uint64(n))
	}
}

// cancelSavingsRate is the reclaimed fraction of all dispatched work.
func (c *AdaptiveBudget) cancelSavingsRate() float64 {
	sel := c.selected.Load()
	if sel == 0 {
		return 0
	}
	return float64(c.cancelled.Load()) / float64(sel)
}

// OnOutcome feeds one request completion (timely or not) into the climb.
// Every Epoch completions the goodput rate for the window is compared
// against the previous settled epoch:
//
//	improved beyond the dead band → keep stepping in the same direction;
//	regressed beyond it           → reverse and step back;
//	inside the band               → hold, and after a few held epochs probe
//	                                a step (upward when cancellation makes
//	                                redundancy cheap) to re-test the slope.
//
// Steps are ±1 and the budget never leaves [MinK, MaxK], so a wrong probe
// costs one epoch at an adjacent set point.
func (c *AdaptiveBudget) OnOutcome(timely bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epochStart.IsZero() {
		c.epochStart = c.cfg.Clock()
	}
	c.completed++
	if timely {
		c.timely++
	}
	if c.completed < c.cfg.Epoch {
		return
	}
	now := c.cfg.Clock()
	elapsed := now.Sub(c.epochStart).Seconds()
	timelyN, tainted := c.timely, c.clamped.Swap(false)
	c.completed, c.timely = 0, 0
	c.epochStart = now
	if !c.primed {
		// The very first window opened at the first completion rather than
		// at an epoch boundary, so its rate is biased high by N/(N−1);
		// discard it and measure cleanly from here.
		c.primed = true
		return
	}
	if tainted || elapsed <= 0 {
		// The overload clamp overrode the set point for part of this
		// window; its rate says nothing about the climb's budget.
		return
	}
	rate := float64(timelyN) / elapsed
	if !c.hasPrev {
		c.prevRate, c.hasPrev = rate, true
		return
	}
	switch {
	case rate > c.prevRate*(1+c.cfg.Hysteresis):
		c.step(c.dir)
		c.holds = 0
		c.prevRate = rate
	case rate < c.prevRate*(1-c.cfg.Hysteresis):
		c.dir = -c.dir
		c.step(c.dir)
		c.holds = 0
		c.prevRate = rate
	default:
		c.heldCount.Add(1)
		c.holds++
		// Smooth the reference so the band tracks slow drift.
		c.prevRate = 0.5*c.prevRate + 0.5*rate
		if c.holds >= controllerProbeAfterHolds {
			c.holds = 0
			if c.cancelSavingsRate() >= controllerCancelCheapRate {
				c.dir = +1 // duplicates are being reclaimed; redundancy is cheap
			}
			// A probe exists to move: at a wall, the only testable
			// direction is the other one.
			if cur := int(c.budget.Load()); cur+c.dir > c.cfg.MaxK || cur+c.dir < c.cfg.MinK {
				c.dir = -c.dir
			}
			c.step(c.dir)
		}
	}
}

// step moves the set point by ±1 inside [MinK, MaxK]; a step off either end
// bounces the direction so the next step leaves the wall.
func (c *AdaptiveBudget) step(dir int) {
	cur := int(c.budget.Load())
	next := cur + dir
	if next < c.cfg.MinK {
		next = c.cfg.MinK
		c.dir = +1
	}
	if next > c.cfg.MaxK {
		next = c.cfg.MaxK
		c.dir = -1
	}
	if next == cur {
		return
	}
	c.budget.Store(int64(next))
	if next > cur {
		c.stepsUp.Add(1)
	} else {
		c.stepsDown.Add(1)
	}
}

// ControllerStats is a snapshot of the controller's activity, for
// experiments and tests.
type ControllerStats struct {
	Budget     int
	StepsUp    uint64
	StepsDown  uint64
	Held       uint64
	Clamps     uint64
	Selected   uint64
	Cancelled  uint64
	SavingsPct float64
}

// Stats snapshots the controller.
func (c *AdaptiveBudget) Stats() ControllerStats {
	return ControllerStats{
		Budget:     c.Budget(),
		StepsUp:    c.stepsUp.Load(),
		StepsDown:  c.stepsDown.Load(),
		Held:       c.heldCount.Load(),
		Clamps:     c.clamps.Load(),
		Selected:   c.selected.Load(),
		Cancelled:  c.cancelled.Load(),
		SavingsPct: 100 * c.cancelSavingsRate(),
	}
}
