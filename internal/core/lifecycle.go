package core

// Timing-fault suspicion: the detection half of the §5.4 feedback loop.
//
// The scheduler already owns every signal needed to decide that a replica —
// as opposed to a request — is timing-faulty: which replicas each pending
// request targeted, which of them replied, when, and against which deadline.
// This file folds those signals into a per-replica sliding window of
// timely/late outcomes and drives the repository's lifecycle state machine
// from the windowed fault rate:
//
//   - every reply from a selected replica records one outcome (late when
//     t4−t0 exceeded the deadline, duplicates included — a slow duplicate is
//     evidence about the replica even though the request already succeeded);
//   - a deadline expiry charges one late outcome to every selected replica
//     that had not replied by the deadline. The pending entry remembers who
//     was charged, so the straggler reply that arrives later does not charge
//     the same request twice (failures are charged once per
//     (request, replica) pair);
//   - when a replica's windowed fault rate crosses SuspectRate it becomes
//     Suspected; past QuarantineRate it is Quarantined (and its outcome
//     window resets so a restarted instance is judged on fresh evidence);
//     back below ClearRate a Suspected replica returns to Active.
//
// Transitions surface through the SuspectReport callback (invoked outside
// the scheduler lock, like degradation reports) and metrics, so a
// dependability manager can rejuvenate quarantined replicas and operators
// can watch the loop work.

import (
	"fmt"
	"time"

	"aqua/internal/repository"
	"aqua/internal/wire"
)

// Lifecycle defaults.
const (
	// DefaultSuspicionWindow is the per-replica outcome window size.
	DefaultSuspicionWindow = 16
	// DefaultMinObservations gates judgment: no transition is taken until a
	// replica's window holds this many outcomes, so one early straggle
	// cannot suspect a healthy replica.
	DefaultMinObservations = 8
	// DefaultSuspectRate is the windowed fault rate at which an Active
	// replica becomes Suspected.
	DefaultSuspectRate = 0.5
	// DefaultQuarantineRate is the windowed fault rate at which a Suspected
	// replica is Quarantined.
	DefaultQuarantineRate = 0.75
	// DefaultClearRate is the windowed fault rate at or below which a
	// Suspected replica returns to Active.
	DefaultClearRate = 0.25
)

// LifecycleConfig enables and tunes the replica lifecycle: suspicion
// windows, quarantine thresholds, and probation re-admission. The zero
// value disables the lifecycle entirely (paper-exact behavior).
type LifecycleConfig struct {
	// Enabled switches the lifecycle on.
	Enabled bool
	// WindowSize is the per-replica outcome window; zero means
	// DefaultSuspicionWindow.
	WindowSize int
	// MinObservations is the minimum outcomes in a replica's window before
	// its fault rate is judged; zero means DefaultMinObservations.
	MinObservations int
	// SuspectRate, QuarantineRate, and ClearRate are the windowed
	// fault-rate thresholds; zero values mean the defaults. They must
	// satisfy ClearRate < SuspectRate <= QuarantineRate.
	SuspectRate    float64
	QuarantineRate float64
	ClearRate      float64
	// ProbationSamples is how many fresh performance reports a probation
	// replica must accumulate before re-admission; zero means the
	// repository default (its window size l).
	ProbationSamples int
	// QuarantineExpiry, when positive, paroles a replica that has been
	// quarantined this long into Probation: the second-chance path for
	// deployments without a dependability manager to restart it. Zero means
	// quarantine holds until an external actor (rejuvenation, membership
	// change) intervenes.
	QuarantineExpiry time.Duration
	// RequireStateTransfer arms the ordered-mode re-admission gate: a
	// Probation replica is promoted only once its performance reports claim
	// a caught-up state machine (completed state transfer), on top of the
	// ProbationSamples warm-up. Leave false for stateless services.
	RequireStateTransfer bool
	// OnSuspect is invoked (outside the scheduler's lock) for every
	// lifecycle transition the scheduler drives. Must not block.
	OnSuspect func(SuspectReport)
}

// withDefaults resolves zero fields.
func (l LifecycleConfig) withDefaults() LifecycleConfig {
	if l.WindowSize <= 0 {
		l.WindowSize = DefaultSuspicionWindow
	}
	if l.MinObservations <= 0 {
		l.MinObservations = DefaultMinObservations
	}
	if l.MinObservations > l.WindowSize {
		l.MinObservations = l.WindowSize
	}
	if l.SuspectRate <= 0 {
		l.SuspectRate = DefaultSuspectRate
	}
	if l.QuarantineRate <= 0 {
		l.QuarantineRate = DefaultQuarantineRate
	}
	if l.QuarantineRate < l.SuspectRate {
		l.QuarantineRate = l.SuspectRate
	}
	if l.ClearRate <= 0 {
		l.ClearRate = DefaultClearRate
	}
	if l.ClearRate >= l.SuspectRate {
		l.ClearRate = l.SuspectRate / 2
	}
	return l
}

// SuspectReport announces one lifecycle transition taken by the scheduler's
// suspicion accounting.
type SuspectReport struct {
	Service wire.Service
	Replica wire.ReplicaID
	// From and To are the lifecycle states around the transition.
	From, To repository.Health
	// FaultRate is the windowed per-replica timing-fault rate that drove
	// the transition, over Observations outcomes.
	FaultRate    float64
	Observations int
}

func (r SuspectReport) String() string {
	return fmt.Sprintf("lifecycle on %q: replica %s %s -> %s (fault rate %.2f over %d outcomes)",
		r.Service, r.Replica, r.From, r.To, r.FaultRate, r.Observations)
}

// faultWindow is a fixed-size ring of per-replica outcomes (true = timing
// fault) with an incremental fault count.
type faultWindow struct {
	ring   []bool
	next   int
	filled int
	faults int
}

func newFaultWindow(size int) *faultWindow {
	return &faultWindow{ring: make([]bool, size)}
}

func (w *faultWindow) add(fault bool) {
	if w.filled == len(w.ring) {
		if w.ring[w.next] {
			w.faults--
		}
	} else {
		w.filled++
	}
	w.ring[w.next] = fault
	if fault {
		w.faults++
	}
	w.next = (w.next + 1) % len(w.ring)
}

func (w *faultWindow) n() int { return w.filled }

func (w *faultWindow) rate() float64 {
	if w.filled == 0 {
		return 0
	}
	return float64(w.faults) / float64(w.filled)
}

// recordOutcome absorbs one per-replica outcome and walks the lifecycle
// state machine when a threshold is crossed. It takes stateMu (which guards
// the suspicion windows); callers may hold a shard mutex.
func (s *Scheduler) recordOutcome(id wire.ReplicaID, fault bool, reps []SuspectReport) []SuspectReport {
	lc := s.cfg.Lifecycle
	if !lc.Enabled {
		return reps
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	w, ok := s.suspicion[id]
	if !ok {
		w = newFaultWindow(lc.WindowSize)
		s.suspicion[id] = w
	}
	w.add(fault)
	if w.n() < lc.MinObservations {
		return reps
	}
	rate := w.rate()
	h, known := s.repo.Health(id)
	if !known {
		return reps
	}
	switch h {
	case repository.Active:
		if rate >= lc.QuarantineRate && s.repo.Quarantine(id, time.Now()) {
			// The rate blew straight past both thresholds (e.g. a full
			// window of expiries): do not wait a lap through Suspected.
			reps = s.noteTransition(id, h, repository.Quarantined, rate, w.filled, reps)
			delete(s.suspicion, id)
		} else if rate >= lc.SuspectRate && s.repo.Suspect(id) {
			reps = s.noteTransition(id, h, repository.Suspected, rate, w.filled, reps)
		}
	case repository.Suspected:
		if rate >= lc.QuarantineRate && s.repo.Quarantine(id, time.Now()) {
			reps = s.noteTransition(id, h, repository.Quarantined, rate, w.filled, reps)
			// Fresh evidence for the next incarnation: the window that
			// convicted this one must not pre-convict its replacement.
			delete(s.suspicion, id)
		} else if rate <= lc.ClearRate && s.repo.ClearSuspicion(id) {
			reps = s.noteTransition(id, h, repository.Active, rate, w.filled, reps)
		}
	}
	return reps
}

// noteTransition updates counters/metrics for one transition and queues its
// report. Caller holds stateMu.
func (s *Scheduler) noteTransition(id wire.ReplicaID, from, to repository.Health, rate float64, n int, reps []SuspectReport) []SuspectReport {
	switch to {
	case repository.Suspected:
		s.stats.suspected.Add(1)
		s.met.suspected.Inc()
	case repository.Quarantined:
		s.stats.quarantined.Add(1)
		s.met.quarantined.Inc()
	case repository.Active:
		s.stats.reinstated.Add(1)
		s.met.reinstated.Inc()
	}
	s.met.quarantinedNow.Set(int64(s.repo.QuarantinedCount()))
	return append(reps, SuspectReport{
		Service:      s.cfg.Service,
		Replica:      id,
		From:         from,
		To:           to,
		FaultRate:    rate,
		Observations: n,
	})
}

// chargeExpiredTargets records a late outcome for every target of p that has
// not replied and has not already been charged for this request. Caller
// holds p's shard mutex.
func (s *Scheduler) chargeExpiredTargets(p *pending, reps []SuspectReport) []SuspectReport {
	if !s.cfg.Lifecycle.Enabled {
		return reps
	}
	for i := range p.targets {
		if p.charged[i] {
			continue
		}
		p.charged[i] = true
		reps = s.recordOutcome(p.targets[i], true, reps)
	}
	return reps
}

// deliverSuspects invokes the OnSuspect callback outside the lock.
func (s *Scheduler) deliverSuspects(reps []SuspectReport) {
	cb := s.cfg.Lifecycle.OnSuspect
	if cb == nil {
		return
	}
	for _, r := range reps {
		cb(r)
	}
}

// selectableSnapshots filters quarantined and probation replicas out of the
// candidate set (§5.4: detected faults feed back into selection; §5.4.1:
// newcomers warm up on probes, not on the live-traffic select-all rule). If
// filtering would leave nothing — every member sick at once — the full set
// is used: a degraded answer beats none, and the paper's cold-start rule is
// the precedent for preferring availability.
func selectableSnapshots(snaps []repository.ReplicaSnapshot) []repository.ReplicaSnapshot {
	n := 0
	for i := range snaps {
		if snaps[i].Health.Selectable() {
			n++
		}
	}
	if n == len(snaps) || n == 0 {
		return snaps
	}
	out := make([]repository.ReplicaSnapshot, 0, n)
	for i := range snaps {
		if snaps[i].Health.Selectable() {
			out = append(out, snaps[i])
		}
	}
	return out
}
