module aqua

go 1.22
