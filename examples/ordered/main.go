// Ordered services: the selection algorithm (§5.3) is indifferent to *which*
// replica answers, which is only safe when replicas are stateless. This demo
// runs the opt-in ordered mode on top of the same stack: the client stamps
// every request with a per-client logical timestamp, each replica holds
// frames back and applies them to its own state machine in stamp order, and
// a crashed replica's replacement must complete a state transfer (snapshot +
// log suffix from a caught-up peer) before the lifecycle loop re-admits it.
//
// Three things to watch in the output:
//
//  1. The bank balance is identical on every replica even though requests
//     race over independent links — stable delivery, not luck.
//
//  2. After the crash, the Proteus manager boots a replacement that reports
//     CaughtUp only once StateTransfers > 0; until then probation holds it
//     out of selection (the re-admission-implies-caught-up gate).
//
//  3. The rejoined replica converges to the live tail via gap refill and
//     finishes with the same balance as the survivors.
//
// Run it with:
//
//	go run ./examples/ordered
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"aqua"
)

// account is the replicated state machine: a single balance plus the count
// of applied operations. Apply must be deterministic — every replica runs
// the same operations in the same order, so equal counts imply equal state.
type account struct {
	mu      sync.Mutex
	balance int64
	applied int
}

func (a *account) Apply(method string, payload []byte) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delta, err := strconv.ParseInt(string(payload), 10, 64)
	if err != nil {
		return nil, err
	}
	switch method {
	case "deposit":
		a.balance += delta
	case "withdraw":
		a.balance -= delta
	}
	a.applied++
	return []byte(strconv.FormatInt(a.balance, 10)), nil
}

func (a *account) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return []byte(fmt.Sprintf("%d %d", a.balance, a.applied)), nil
}

func (a *account) Restore(snapshot []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(snapshot) == 0 {
		a.balance, a.applied = 0, 0
		return nil
	}
	_, err := fmt.Sscanf(string(snapshot), "%d %d", &a.balance, &a.applied)
	return err
}

func (a *account) state() (int64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, a.applied
}

func main() {
	// Remember every state machine the cluster mints so we can compare the
	// replicas' states directly at the end.
	var mu sync.Mutex
	var accounts []*account
	factory := func() aqua.StateMachine {
		a := &account{}
		mu.Lock()
		accounts = append(accounts, a)
		mu.Unlock()
		return a
	}

	// The plain handler still backs unordered calls and probes; ordered
	// calls route through each replica's state machine instead.
	handler := func(method string, payload []byte) ([]byte, error) {
		return []byte("ok"), nil
	}
	cluster, err := aqua.NewCluster("bank", 3, handler,
		aqua.WithStateMachine(factory),
		aqua.WithSimulatedLoad(3*time.Millisecond, time.Millisecond),
		aqua.WithSelfHealing(),
		aqua.WithLifecycle(aqua.LifecycleConfig{ProbationSamples: 2}),
		aqua.WithSeed(18),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(aqua.ClientConfig{
		Name:          "teller",
		QoS:           aqua.QoS{Deadline: 250 * time.Millisecond, MinProbability: 0.9},
		Strategy:      aqua.AllSelection(),
		Ordered:       true,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	deposit := func(n int64) string {
		reply, err := client.Call(ctx, "deposit", []byte(strconv.FormatInt(n, 10)))
		if err != nil {
			log.Fatal(err)
		}
		return string(reply)
	}

	fmt.Println("-- 20 deposits against 3 ordered replicas")
	var last string
	for i := 0; i < 20; i++ {
		last = deposit(5)
	}
	fmt.Printf("   balance after 20 deposits: %s\n", last)
	printPool(cluster)

	victim := cluster.Replicas()[0]
	fmt.Printf("\n-- crash-stopping %s; Proteus must replace it and the replacement\n", victim.ID())
	fmt.Println("   must complete a state transfer before it is re-admitted")
	if err := cluster.StopReplica(victim.ID()); err != nil {
		log.Fatal(err)
	}

	// Keep the service under load while recovery runs: the survivors carry
	// the stream, and the stamps the replacement misses while in probation
	// become the gap it refills after re-admission.
	var replacement *aqua.Replica
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		last = deposit(5)
		for _, r := range cluster.Replicas() {
			if r.ID() != victim.ID() && r.StateTransfers() > 0 && r.CaughtUp() {
				replacement = r
			}
		}
		if replacement != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if replacement == nil {
		log.Fatal("no replacement completed state transfer within 10s")
	}
	fmt.Printf("   %s recovered: state transfers=%d, caught up=%v, tail=%d\n",
		replacement.ID(), replacement.StateTransfers(), replacement.CaughtUp(), replacement.OrderedTail())

	fmt.Println("\n-- 20 more deposits; the rejoined replica converges via gap refill")
	for i := 0; i < 20; i++ {
		last = deposit(5)
	}
	// Give the refilled tail a moment to drain on the replacement.
	target := client.OrderedStats().StampsIssued
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if replacement.OrderedTail() >= target {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("   final balance: %s\n", last)
	printPool(cluster)

	stats := client.OrderedStats()
	fmt.Printf("\n-- sequencer: stamps issued=%d, gap refills served=%d, pruned=%d\n",
		stats.StampsIssued, stats.RefillsServed, stats.RefillsPruned)

	// The punchline: every live state machine agrees. The crashed machine is
	// allowed to be a (consistent) prefix — it stopped mid-stream.
	fmt.Println("-- replica state machines:")
	mu.Lock()
	defer mu.Unlock()
	for i, a := range accounts {
		balance, applied := a.state()
		fmt.Printf("   sm[%d]: balance=%d applied=%d\n", i, balance, applied)
	}
}

func printPool(c *aqua.Cluster) {
	for _, r := range c.Replicas() {
		fmt.Printf("   %s: tail=%d caught-up=%v transfers=%d\n",
			r.ID(), r.OrderedTail(), r.CaughtUp(), r.StateTransfers())
	}
}
