// Radar tracking: the paper's second motivating workload ("search engines
// and radar-tracking applications"). A tracker issues periodic position
// queries with a hard 120ms deadline against replicas whose load is bursty
// (bimodal: usually fast, occasionally stalled). The dynamic algorithm
// raises redundancy exactly when the replicas' recent history degrades.
//
//	go run ./examples/radartrack
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"time"

	"aqua"
	"aqua/internal/stats"
)

// track computes the simulated aircraft position for a timestep. The
// payload is the step number; the reply is (x, y) fixed-point coordinates.
func track(_ string, payload []byte) ([]byte, error) {
	step := binary.BigEndian.Uint32(payload)
	angle := float64(step) / 20 * 2 * math.Pi
	out := make([]byte, 8)
	binary.BigEndian.PutUint32(out[0:], uint32(10000*(1+math.Cos(angle))))
	binary.BigEndian.PutUint32(out[4:], uint32(10000*(1+math.Sin(angle))))
	return out, nil
}

func main() {
	// Bursty load: 70ms nominal, but 15% of requests hit a ~200ms stall.
	load := stats.Bimodal{
		Light:     stats.Normal{Mu: 70 * time.Millisecond, Sigma: 15 * time.Millisecond},
		Heavy:     stats.Normal{Mu: 200 * time.Millisecond, Sigma: 30 * time.Millisecond},
		HeavyProb: 0.15,
	}
	cluster, err := aqua.NewCluster("radar", 6, track,
		aqua.WithLoadDistribution(load),
		aqua.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "tracker",
		QoS:  aqua.QoS{Deadline: 120 * time.Millisecond, MinProbability: 0.9},
		OnViolation: func(v aqua.ViolationReport) {
			fmt.Printf("!! track quality degraded: %v\n", v)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	payload := make([]byte, 4)
	misses := 0
	for step := uint32(0); step < 40; step++ {
		binary.BigEndian.PutUint32(payload, step)
		start := time.Now()
		pos, err := client.Call(ctx, "track", payload)
		tr := time.Since(start)
		if err != nil {
			fmt.Printf("step %2d  lost contact: %v\n", step, err)
			misses++
			continue
		}
		x := binary.BigEndian.Uint32(pos[0:])
		y := binary.BigEndian.Uint32(pos[4:])
		mark := ""
		if tr > 120*time.Millisecond {
			mark = "  <- stale fix (timing failure)"
			misses++
		}
		fmt.Printf("step %2d  %-13v fix=(%5.2f, %5.2f)%s\n",
			step, tr, float64(x)/10000, float64(y)/10000, mark)
		// Periodic tracker: a fix is needed every 150ms.
		if wait := 150*time.Millisecond - tr; wait > 0 {
			time.Sleep(wait)
		}
	}

	st := client.Stats()
	fmt.Printf("\n40 tracking steps: %d stale fixes (observed p=%.3f, tolerated 0.10)\n",
		misses, st.FailureProbability())
	fmt.Printf("mean redundancy %.2f — the algorithm pays extra replicas only while\n", st.MeanRedundancy())
	fmt.Println("the sliding window remembers a stall; it relaxes once history recovers.")
}
