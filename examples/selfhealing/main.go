// Self-healing: the Proteus dependability manager (§2) keeps a service's
// replication level despite crashes, and the §5.4 lifecycle loop handles the
// subtler failure mode — a replica that is alive but persistently late.
//
// Two things go wrong here:
//
//  1. A replica is crash-stopped; the manager restarts a replacement and
//     membership pruning keeps requests off the corpse.
//
//  2. A fault injector makes one replica's link persistently slow. Crash
//     detection never fires (the replica answers — late), but the lifecycle
//     loop does: timing-fault suspicion quarantines it, the manager retires
//     and replaces it, and the client's QoS recovers.
//
// Run it with:
//
//	go run ./examples/selfhealing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aqua"
	"aqua/internal/stats"
	"aqua/internal/transport"
)

func main() {
	inj := aqua.NewFaultInjector(9)
	cluster, err := aqua.NewCluster("inventory", 4,
		func(method string, payload []byte) ([]byte, error) {
			return []byte("in-stock"), nil
		},
		aqua.WithSimulatedLoad(60*time.Millisecond, 20*time.Millisecond),
		aqua.WithSelfHealing(),
		aqua.WithFaultInjection(inj),
		aqua.WithLifecycle(aqua.LifecycleConfig{
			WindowSize:      8,
			MinObservations: 4,
			OnSuspect: func(r aqua.SuspectReport) {
				fmt.Printf("** %v\n", r)
			},
		}),
		aqua.WithSeed(9),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "shopper",
		QoS:  aqua.QoS{Deadline: 120 * time.Millisecond, MinProbability: 0.9},
		// The staleness bound forces the slow replica back into selection
		// after it has been routed around, so fault evidence keeps accruing
		// until quarantine instead of the replica lingering half-forgotten.
		StalenessBound: 300 * time.Millisecond,
		OnViolation: func(v aqua.ViolationReport) {
			fmt.Printf("!! QoS violated: %v\n", v)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < 44; i++ {
		switch i {
		case 8:
			// Failure mode 1: a clean crash. Membership pruning masks it and
			// the manager restores the replication level.
			victim := cluster.Replicas()[0]
			fmt.Printf("--- crash-stopping %s (pool=%d) ---\n", victim.ID(), len(cluster.Replicas()))
			if err := cluster.StopReplica(victim.ID()); err != nil {
				log.Fatal(err)
			}
		case 16:
			// Failure mode 2: a timing fault. The replica stays up but every
			// message to it is delayed past the deadline; only the lifecycle
			// loop can evict it.
			victim := cluster.Replicas()[0]
			fmt.Printf("--- slowing the link to %s (pool=%d) ---\n", victim.ID(), len(cluster.Replicas()))
			inj.SetLink(aqua.AnyAddr, transport.Addr(victim.Addr()), aqua.FaultPolicy{
				Delay: stats.Constant{Delay: 400 * time.Millisecond},
			})
		}
		start := time.Now()
		if _, err := client.Call(ctx, "check", []byte("sku-42")); err != nil {
			fmt.Printf("req %2d  error: %v\n", i, err)
			continue
		}
		tr := time.Since(start)
		mark := ""
		if tr > 120*time.Millisecond {
			mark = "  <- timing failure"
		}
		fmt.Printf("req %2d  %-14v pool=%d%s\n", i, tr, len(cluster.Replicas()), mark)
		time.Sleep(50 * time.Millisecond)
	}

	st := client.Stats()
	fmt.Printf("\n%d requests, %d timing failures (p=%.3f, tolerated 0.10)\n",
		st.Requests, st.TimingFailures, st.FailureProbability())
	fmt.Printf("pool ends at %d replicas; the manager started %d replacements\n",
		len(cluster.Replicas()), cluster.Manager().StartedCount())
	fmt.Println("a crash and a timing fault were both absorbed: redundant subsets")
	fmt.Println("masked the in-flight loss, suspicion quarantined the late replica,")
	fmt.Println("and Proteus restored the replication level behind the scenes.")
}
