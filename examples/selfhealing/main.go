// Self-healing: the Proteus dependability manager (§2) keeps a service's
// replication level despite crashes. Two replicas are crash-stopped in
// sequence; the manager restarts replacements, the timing fault handler's
// membership pruning keeps requests off the corpses, and the client's QoS
// never degrades.
//
//	go run ./examples/selfhealing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aqua"
)

func main() {
	cluster, err := aqua.NewCluster("inventory", 4,
		func(method string, payload []byte) ([]byte, error) {
			return []byte("in-stock"), nil
		},
		aqua.WithSimulatedLoad(60*time.Millisecond, 20*time.Millisecond),
		aqua.WithSelfHealing(),
		aqua.WithSeed(9),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "shopper",
		QoS:  aqua.QoS{Deadline: 120 * time.Millisecond, MinProbability: 0.9},
		OnViolation: func(v aqua.ViolationReport) {
			fmt.Printf("!! QoS violated: %v\n", v)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < 30; i++ {
		// Crash a replica at request 8 and another at request 16.
		if i == 8 || i == 16 {
			victim := cluster.Replicas()[0]
			fmt.Printf("--- crash-stopping %s (pool=%d) ---\n", victim.ID(), len(cluster.Replicas()))
			if err := cluster.StopReplica(victim.ID()); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		if _, err := client.Call(ctx, "check", []byte("sku-42")); err != nil {
			fmt.Printf("req %2d  error: %v\n", i, err)
			continue
		}
		tr := time.Since(start)
		mark := ""
		if tr > 120*time.Millisecond {
			mark = "  <- timing failure"
		}
		fmt.Printf("req %2d  %-14v pool=%d%s\n", i, tr, len(cluster.Replicas()), mark)
		time.Sleep(50 * time.Millisecond)
	}

	st := client.Stats()
	fmt.Printf("\n%d requests, %d timing failures (p=%.3f, tolerated 0.10)\n",
		st.Requests, st.TimingFailures, st.FailureProbability())
	fmt.Printf("pool ends at %d replicas; the manager started %d replacements\n",
		len(cluster.Replicas()), cluster.Manager().StartedCount())
	fmt.Println("two crashes were absorbed: redundant subsets masked the in-flight")
	fmt.Println("loss and Proteus restored the replication level behind the scenes.")
}
