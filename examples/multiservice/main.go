// Multi-service gateway: the paper's architecture loads one protocol
// handler per service into a client's gateway ("a client that is
// communicating with multiple servers would have multiple handlers loaded
// in its gateway", §5.2). One client talks to a fast quote service and a
// slow analytics service through a single shared endpoint, each handler
// holding its own QoS contract and private information repository.
//
//	go run ./examples/multiservice
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aqua/internal/gateway"
	"aqua/internal/server"
	"aqua/internal/stats"
	"aqua/internal/transport"
	"aqua/internal/wire"
)

// startPool launches n replicas of one service and returns their addresses.
func startPool(net transport.Network, service wire.Service, n int, load stats.DelayDist) (map[wire.ReplicaID]transport.Addr, []*server.Replica, error) {
	pool := make(map[wire.ReplicaID]transport.Addr, n)
	var replicas []*server.Replica
	for i := 0; i < n; i++ {
		id := wire.ReplicaID(fmt.Sprintf("%s-%d", service, i))
		ep, err := net.Listen(transport.Addr(id))
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.Start(ep, server.Config{
			ID: id, Service: service,
			Handler: func(method string, payload []byte) ([]byte, error) {
				return []byte(fmt.Sprintf("%s/%s ok", service, method)), nil
			},
			LoadDelay: load,
			Seed:      int64(i + 1),
		})
		if err != nil {
			return nil, nil, err
		}
		pool[id] = srv.Addr()
		replicas = append(replicas, srv)
	}
	return pool, replicas, nil
}

func main() {
	net := transport.NewInMem()
	defer func() { _ = net.Close() }()

	// Quotes answer in ~20ms; analytics needs ~150ms.
	quotes, qReplicas, err := startPool(net, "quotes", 4,
		stats.Normal{Mu: 20 * time.Millisecond, Sigma: 8 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	analytics, aReplicas, err := startPool(net, "analytics", 5,
		stats.Normal{Mu: 150 * time.Millisecond, Sigma: 60 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, r := range qReplicas {
			r.Stop()
		}
		for _, r := range aReplicas {
			r.Stop()
		}
	}()

	ep, err := net.Listen("client:trader")
	if err != nil {
		log.Fatal(err)
	}
	g, err := gateway.NewMultiGateway(ep, "trader")
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()

	// Different QoS contracts per service, as each handler stores its own.
	if _, err := g.LoadHandler(gateway.Config{
		Service:        "quotes",
		QoS:            wire.QoS{Deadline: 50 * time.Millisecond, MinProbability: 0.95},
		StaticReplicas: quotes,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := g.LoadHandler(gateway.Config{
		Service:        "analytics",
		QoS:            wire.QoS{Deadline: 300 * time.Millisecond, MinProbability: 0.8},
		StaticReplicas: analytics,
	}); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		start := time.Now()
		if _, err := g.Call(ctx, "quotes", "spot", []byte("EURUSD")); err != nil {
			log.Fatal(err)
		}
		qTr := time.Since(start)

		start = time.Now()
		if _, err := g.Call(ctx, "analytics", "var", []byte("portfolio-7")); err != nil {
			log.Fatal(err)
		}
		aTr := time.Since(start)
		fmt.Printf("round %2d  quotes=%-12v analytics=%v\n", i, qTr, aTr)
	}

	hq, _ := g.Handler("quotes")
	ha, _ := g.Handler("analytics")
	fmt.Printf("\nquotes:    redundancy %.2f, failures %d/%d (deadline 50ms, Pc 0.95)\n",
		hq.Stats().MeanRedundancy(), hq.Stats().TimingFailures, hq.Stats().Completed)
	fmt.Printf("analytics: redundancy %.2f, failures %d/%d (deadline 300ms, Pc 0.80)\n",
		ha.Stats().MeanRedundancy(), ha.Stats().TimingFailures, ha.Stats().Completed)
	fmt.Println("one gateway, two handlers, two QoS contracts, two private repositories.")
}
