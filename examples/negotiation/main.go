// QoS negotiation: the paper's runtime-renegotiation loop (§4, §5.4.2). The
// client first demands an infeasible deadline; when the handler's callback
// reports that the observed frequency of timely responses cannot meet the
// requested probability, the client renegotiates a feasible specification —
// exactly the recovery path the paper prescribes ("the client can then
// either choose to renegotiate its QoS specification or issue its requests
// to the service at a later time").
//
//	go run ./examples/negotiation
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"aqua"
)

func main() {
	// Replicas need ~90ms on average; a 40ms deadline is hopeless.
	cluster, err := aqua.NewCluster("quote", 5,
		func(method string, payload []byte) ([]byte, error) {
			return []byte("42"), nil
		},
		aqua.WithSimulatedLoad(90*time.Millisecond, 20*time.Millisecond),
		aqua.WithSeed(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var violated atomic.Bool
	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "negotiator",
		QoS:  aqua.QoS{Deadline: 40 * time.Millisecond, MinProbability: 0.9},
		OnViolation: func(v aqua.ViolationReport) {
			fmt.Printf("\ncallback: %v\n", v)
			violated.Store(true)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	phase := "infeasible (t=40ms, Pc=0.9)"
	for i := 0; i < 40; i++ {
		start := time.Now()
		if _, err := client.Call(ctx, "quote", nil); err != nil {
			fmt.Printf("[%s] req %2d error: %v\n", phase, i, err)
			continue
		}
		fmt.Printf("[%s] req %2d tr=%v\n", phase, i, time.Since(start).Round(time.Millisecond))

		// React to the violation callback: renegotiate to something the
		// service can actually deliver.
		if violated.CompareAndSwap(true, false) {
			newQoS := aqua.QoS{Deadline: 160 * time.Millisecond, MinProbability: 0.9}
			if err := client.Renegotiate(newQoS); err != nil {
				log.Fatal(err)
			}
			phase = "renegotiated (t=160ms, Pc=0.9)"
			fmt.Printf("client renegotiated to %v\n\n", newQoS)
		}
	}

	st := client.Stats()
	fmt.Printf("\ntotals: %d requests, %d timing failures, mean redundancy %.2f\n",
		st.Requests, st.TimingFailures, st.MeanRedundancy())
	fmt.Println("after renegotiation the failure stream stops: the deadline is feasible")
	fmt.Println("and Algorithm 1 sizes the replica subset to hold Pc=0.9.")
}
