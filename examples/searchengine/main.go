// Search engine: the paper's motivating stateless workload ("stateless
// applications such as search engines"). Seven replicas serve keyword
// lookups over real TCP loopback sockets; mid-run, the fastest replica is
// crash-stopped to show that the selected subsets absorb the crash without
// violating the client's QoS.
//
//	go run ./examples/searchengine
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"aqua"
)

// corpus is the toy search index, replicated on every server (the service
// is stateless from the middleware's point of view).
var corpus = map[string][]string{
	"replica":   {"doc-12", "doc-40", "doc-77"},
	"timing":    {"doc-3", "doc-12"},
	"fault":     {"doc-3", "doc-9", "doc-77"},
	"selection": {"doc-40"},
	"qos":       {"doc-9", "doc-12", "doc-51"},
}

func search(_ string, payload []byte) ([]byte, error) {
	hits := corpus[strings.ToLower(string(payload))]
	if len(hits) == 0 {
		return []byte("(no results)"), nil
	}
	return []byte(strings.Join(hits, ",")), nil
}

func main() {
	cluster, err := aqua.NewCluster("search", 7, search,
		aqua.WithTCP(),
		aqua.WithSimulatedLoad(80*time.Millisecond, 35*time.Millisecond),
		aqua.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "searcher",
		QoS:  aqua.QoS{Deadline: 140 * time.Millisecond, MinProbability: 0.9},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	queries := []string{"replica", "timing", "fault", "selection", "qos"}
	ctx := context.Background()
	failures := 0

	for i := 0; i < 30; i++ {
		// Crash the pool's first replica a third of the way through: the
		// paper's scenario of "a replica may crash, making it unresponsive".
		if i == 10 {
			victim := cluster.Replicas()[0]
			fmt.Printf("--- crashing replica %s (served %d requests so far) ---\n",
				victim.ID(), victim.Served())
			if err := cluster.StopReplica(victim.ID()); err != nil {
				log.Fatal(err)
			}
		}
		q := queries[i%len(queries)]
		start := time.Now()
		hits, err := client.Call(ctx, "search", []byte(q))
		tr := time.Since(start)
		if err != nil {
			fmt.Printf("query %-10q error: %v\n", q, err)
			failures++
			continue
		}
		mark := ""
		if tr > 140*time.Millisecond {
			mark = "  <- timing failure"
			failures++
		}
		fmt.Printf("query %-10q %-14v -> %s%s\n", q, tr, hits, mark)
	}

	st := client.Stats()
	fmt.Printf("\n%d requests, %d timing failures (observed p=%.2f; client tolerates %.2f)\n",
		st.Requests, st.TimingFailures, st.FailureProbability(), 0.1)
	fmt.Printf("mean redundancy %.2f; the crash cost no QoS violation because every\n", st.MeanRedundancy())
	fmt.Println("selected subset already tolerated one member crash (Algorithm 1's reserve).")
}
