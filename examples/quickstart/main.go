// Quickstart: a five-replica service with simulated load, one client with a
// probabilistic deadline, and the dynamic selection algorithm picking the
// replica subset per request.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aqua"
)

func main() {
	// Five replicas of a trivial service. Each delays its response by a
	// draw from Normal(60ms, 25ms) — the paper's way of simulating load.
	cluster, err := aqua.NewCluster("quickstart", 5,
		func(method string, payload []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("pong(%s)", payload)), nil
		},
		aqua.WithSimulatedLoad(60*time.Millisecond, 25*time.Millisecond),
		aqua.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The client wants a response within 100ms, at least 90% of the time.
	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "quickstart-client",
		QoS:  aqua.QoS{Deadline: 100 * time.Millisecond, MinProbability: 0.9},
		OnViolation: func(v aqua.ViolationReport) {
			fmt.Printf("!! QoS violated: %v\n", v)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		start := time.Now()
		reply, err := client.Call(ctx, "ping", []byte(fmt.Sprintf("%d", i)))
		tr := time.Since(start)
		switch {
		case err != nil:
			fmt.Printf("req %2d  error: %v\n", i, err)
		case tr > 100*time.Millisecond:
			fmt.Printf("req %2d  %-14v %s  <- timing failure\n", i, tr, reply)
		default:
			fmt.Printf("req %2d  %-14v %s\n", i, tr, reply)
		}
	}

	st := client.Stats()
	fmt.Printf("\n%d requests, %d timing failures (observed p=%.2f, tolerated %.2f)\n",
		st.Requests, st.TimingFailures, st.FailureProbability(), 1-0.9)
	fmt.Printf("mean redundancy: %.2f replicas/request, %d duplicate replies harvested\n",
		st.MeanRedundancy(), st.Duplicates)
}
