// Package aqua is a Go reproduction of the timing-fault-tolerant replica
// selection system from "A Dynamic Replica Selection Algorithm for
// Tolerating Timing Faults" (Krishnamurthy, Sanders, Cukier — DSN 2001),
// originally built inside the AQuA CORBA middleware.
//
// A replicated, stateless service runs as a pool of server replicas. A
// client declares a QoS specification — a response deadline t and a minimum
// probability Pc with which the deadline must be met — and calls the service
// through a timing fault handler. Per request, the handler:
//
//   - predicts each replica's probability of responding within t from an
//     online model (empirical distributions of service time and queuing
//     delay over a sliding measurement window, plus the latest
//     gateway-to-gateway delay),
//   - selects the smallest replica subset whose combined probability of at
//     least one timely response meets Pc even if any single member crashes,
//   - multicasts the request to that subset and delivers the earliest reply,
//     harvesting performance data from every reply (duplicates included),
//   - detects timing failures and notifies the client through a callback
//     when the observed timely-response rate drops below Pc.
//
// # Quick start
//
//	cluster, err := aqua.NewCluster("search", 5, handler,
//	    aqua.WithSimulatedLoad(100*time.Millisecond, 50*time.Millisecond))
//	client, err := cluster.NewClient(aqua.QoS{
//	    Deadline:       150 * time.Millisecond,
//	    MinProbability: 0.9,
//	})
//	reply, err := client.Call(ctx, "lookup", []byte("query"))
//
// See the examples/ directory for runnable programs over both the
// in-process and the TCP transports.
package aqua

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aqua/internal/core"
	"aqua/internal/gateway"
	"aqua/internal/group"
	"aqua/internal/metrics"
	"aqua/internal/proteus"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/server"
	"aqua/internal/stats"
	"aqua/internal/transport"
	"aqua/internal/wire"
)

// QoS is a client's quality-of-service specification: the deadline by which
// a response must arrive and the minimum probability with which that must
// happen (the paper's t and Pc(t)).
type QoS = wire.QoS

// ReplicaID identifies one replica of a service.
type ReplicaID = wire.ReplicaID

// Service names a replicated service.
type Service = wire.Service

// ViolationReport is delivered to the client's QoS callback when the
// observed frequency of timely responses falls below the requested minimum.
type ViolationReport = core.ViolationReport

// Stats is a snapshot of a client handler's counters.
type Stats = core.Stats

// LifecycleConfig enables the §5.4 replica-lifecycle loop on a client's
// scheduler: per-replica timing-fault suspicion windows, quarantine of
// persistently late replicas (excluded from selection, select-all fallback
// included), and probe-only probation for newly joined or restarted
// replicas until their window holds MinSamples measurements. Set
// Enabled: true and pair with ClientConfig.ProbeInterval so probation
// replicas are warmed back in; zero value keeps the pre-lifecycle behavior.
type LifecycleConfig = core.LifecycleConfig

// SuspectReport announces one replica health transition (suspected,
// quarantined, cleared, re-admitted); see LifecycleConfig.OnSuspect.
type SuspectReport = core.SuspectReport

// Health is a replica's lifecycle state in a client's local repository.
type Health = repository.Health

// Replica lifecycle states.
const (
	HealthActive      = repository.Active
	HealthSuspected   = repository.Suspected
	HealthQuarantined = repository.Quarantined
	HealthProbation   = repository.Probation
)

// Handler is the application logic run by each replica.
type Handler = server.Handler

// StateMachine is the replicated application of an ordered service: Apply
// executes one operation, Snapshot serializes the full state, and Restore
// replaces it (nil snapshot = reset to initial state). The replica runtime
// serializes all three calls. Install one per replica with WithStateMachine
// and call through clients created with ClientConfig.Ordered.
type StateMachine = server.StateMachine

// Strategy selects the replica subset for each request. Build one with
// DynamicSelection and friends.
type Strategy = selection.Strategy

// DynamicSelection returns the paper's Algorithm 1: the minimal subset
// meeting the QoS with a single-crash reserve.
func DynamicSelection() Strategy { return selection.NewDynamic() }

// DynamicSelectionMulti generalizes Algorithm 1 to tolerate f simultaneous
// crashes.
func DynamicSelectionMulti(f int) Strategy { return selection.NewDynamicMulti(f) }

// SingleBestSelection picks only the most promising replica (no crash
// protection) — the classic lowest-expected-response-time baseline.
func SingleBestSelection() Strategy { return selection.SingleBest{} }

// AllSelection multicasts to every replica — AQuA's active replication.
func AllSelection() Strategy { return selection.All{} }

// BudgetedSelection wraps Algorithm 1 in a load-conditioned redundancy
// budget: as the mean per-replica outstanding work (queue depth plus
// in-flight copies) rises, the permitted |K| shrinks toward MinBudget, the
// select-all fallback is capped, and one forced-cold probe slot is kept so
// a drained replica is rediscovered. The single-crash reserve (Eq. 3) is
// never given up. Pair it with ClientConfig.Overload for admission control.
func BudgetedSelection() Strategy { return selection.NewBudgeted() }

// OverloadConfig enables admission control and the degradation ladder
// (Normal → Budgeted → Shedding, with hysteresis) on a client's scheduler.
// The zero value disables admission control entirely.
type OverloadConfig = core.OverloadConfig

// DegradationReport announces a scheduler degradation-mode transition; see
// OverloadConfig.OnDegradation.
type DegradationReport = core.DegradationReport

// Mode is a scheduler degradation state (Normal, Budgeted, or Shedding).
type Mode = core.Mode

// Degradation-ladder states, least to most degraded.
const (
	ModeNormal   = core.ModeNormal
	ModeBudgeted = core.ModeBudgeted
	ModeShedding = core.ModeShedding
)

// ErrOverloaded is returned (wrapped) by Client.Call when the admission
// ceiling sheds the request instead of queueing it. Match with errors.Is.
var ErrOverloaded = core.ErrOverloaded

// AdaptiveBudgetConfig tunes the online redundancy controller (see
// ClientConfig.AdaptiveBudget). MinK is floored at the crash reserve;
// MaxK defaults to the pool size at client creation; the remaining zero
// values take the controller defaults.
type AdaptiveBudgetConfig = core.AdaptiveBudgetConfig

// ControllerStats is a snapshot of the adaptive budget controller's
// counters; see Client.ControllerStats.
type ControllerStats = core.ControllerStats

// MetricsRegistry holds named counters, gauges, and latency histograms.
// Every component reports to the process-wide default registry unless a
// cluster is built with WithMetrics.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's instruments.
type MetricsSnapshot = metrics.Snapshot

// MetricsServer is a running metrics/pprof HTTP endpoint.
type MetricsServer = metrics.Server

// NewMetricsRegistry returns an empty, isolated metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Metrics snapshots the process-wide default registry: every scheduler,
// gateway, prober, and transport not explicitly given its own registry
// reports here.
func Metrics() MetricsSnapshot { return metrics.Default().Snapshot() }

// ServeMetrics starts an HTTP server on addr (":0" picks a free port; read
// it back with Addr) exposing reg — or the default registry when reg is nil
// — as Prometheus text at /metrics, JSON at /metrics.json, and the standard
// pprof handlers under /debug/pprof/.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return metrics.Serve(addr, metrics.OrDefault(reg))
}

// ClientConfig configures a service client.
type ClientConfig struct {
	// Name identifies the client; must be unique within the cluster.
	Name string
	// QoS is the initial QoS specification.
	QoS QoS
	// Strategy overrides replica selection; nil means DynamicSelection().
	Strategy Strategy
	// WindowSize is the measurement sliding-window size l (0 = 5, as in
	// the paper's experiments).
	WindowSize int
	// CompensateOverhead subtracts the measured selection overhead δ from
	// the deadline when predicting (paper §5.3.3).
	CompensateOverhead bool
	// OnViolation receives QoS-violation callbacks. Must not block.
	OnViolation func(ViolationReport)
	// ProbeInterval, when positive, enables active probing of replicas
	// whose performance data has gone stale (paper §8).
	ProbeInterval time.Duration
	// StalenessBound, when positive, treats a replica whose performance
	// data is older than the bound as cold: the scheduler forces it into
	// the next selection so live traffic re-measures it. With Lifecycle
	// enabled this is what lets a routed-around slow replica keep accruing
	// fault evidence until it is quarantined, instead of lingering
	// half-forgotten.
	StalenessBound time.Duration
	// MaxWait bounds how long Call waits for a first reply; zero means 10×
	// the QoS deadline.
	MaxWait time.Duration
	// Overload configures admission control and the degradation ladder.
	// The zero value disables both (paper-exact behavior).
	Overload OverloadConfig
	// ShedRetryDelay is the backoff before Call retries a shed request
	// once. Zero means half the QoS deadline; negative disables the retry.
	ShedRetryDelay time.Duration
	// Lifecycle enables the replica suspicion/quarantine/probation loop for
	// this client. The zero value inherits the cluster's WithLifecycle
	// default (or stays disabled). On a self-healing cluster, quarantine
	// transitions are forwarded to the dependability manager, which retires
	// the sick replica and boots a replacement.
	Lifecycle LifecycleConfig
	// CancelOnFirstReply multicasts a Cancel to the losing replicas of a
	// selection as soon as the first successful reply is delivered, so a
	// queued duplicate is purged (or a mid-service one aborted) instead of
	// burning a full service time. Cancel is advisory and idempotent;
	// losing one merely restores the default serve-the-duplicate behavior,
	// and replies already in flight are still harvested for performance
	// data.
	CancelOnFirstReply bool
	// AdaptiveBudget, when non-nil, installs the online redundancy
	// controller: it replaces the static load→|K| interpolation inside a
	// budgeted strategy with an epoch hill climb on measured timely
	// goodput. Effective only with a budget-aware Strategy
	// (BudgetedSelection); nil Strategy defaults to BudgetedSelection when
	// this is set. Zero MaxK means the pool size at client creation.
	AdaptiveBudget *AdaptiveBudgetConfig
	// DigestGossip, when non-nil, joins this client to the shared-
	// intelligence digest fabric: its repository's locally measured window
	// digests are pushed to peer gateways on a jittered cadence and peers'
	// digests seed this client's predictions for replicas it has no local
	// history on (displaced sample-by-sample as local measurements arrive).
	// Wire the peer set with ConnectGossip after minting the clients.
	DigestGossip *DigestGossipConfig
	// Ordered runs this client in the ordered service mode: every request is
	// stamped with a per-client logical timestamp, replicas built with
	// WithStateMachine hold frames back and apply each client's operations in
	// stamp order, and the gateway answers replica gap-refill requests from a
	// bounded log of original frames. With Lifecycle enabled on a stateful
	// cluster, probation re-admission additionally requires a completed state
	// transfer (the replica's reports must claim CaughtUp). Incompatible with
	// CancelOnFirstReply: purging a stamped request would hole the apply
	// sequence.
	Ordered bool
	// DisablePerfSubscription opts this client out of the §5.4 per-request
	// performance-report subscription: it learns only from its own replies
	// and probes. This is the WAN/high-fan-out regime where per-request
	// publication to every gateway is too expensive and DigestGossip is the
	// intended channel for shared intelligence.
	DisablePerfSubscription bool
}

// DigestGossipConfig configures a client's participation in the digest
// fabric (see ClientConfig.DigestGossip).
type DigestGossipConfig struct {
	// Interval is the base gossip cadence; each push fires after a uniform
	// jitter in [0.5, 1.5) × Interval. Non-positive disables gossip.
	Interval time.Duration
	// Bootstrap requests a full digest snapshot from one peer as soon as
	// peers are known (ConnectGossip), seeding the repository before the
	// first jittered round — the peer-snapshot bootstrap for freshly placed
	// gateways.
	Bootstrap bool
}

// GossipStats counts one client's digest-fabric activity; see
// Client.DigestStats.
type GossipStats = gateway.GossipStats

// ConnectGossip full-meshes the digest fabric over the given clients: each
// gossip-enabled client's peer set becomes every other client's transport
// address. Clients minted without DigestGossip are valid mesh members (their
// addresses are shared) but ignore the fabric themselves. Pending bootstraps
// fire immediately against the new peer set.
func ConnectGossip(clients ...*Client) {
	for _, self := range clients {
		peers := make([]transport.Addr, 0, len(clients)-1)
		for _, other := range clients {
			if other != self {
				peers = append(peers, other.addr)
			}
		}
		self.handler.SetGossipPeers(peers)
	}
}

// Client is a connected service client. Create with Cluster.NewClient;
// release with Close.
type Client struct {
	handler *gateway.TimingFaultHandler
	cluster *Cluster
	addr    transport.Addr // the client's own endpoint address (gossip peering)
}

// Call invokes the service and returns the earliest reply, blocking up to
// the QoS deadline (and a straggler grace period) as the paper's handler
// does. A reply that arrives after the deadline is still returned; the
// timing failure is recorded and counts toward the violation callback.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return c.handler.Call(ctx, method, payload)
}

// Renegotiate replaces the QoS specification at runtime, as the paper
// allows ("negotiate it at runtime as often as it wants").
func (c *Client) Renegotiate(q QoS) error { return c.handler.Renegotiate(q) }

// Stats returns the handler's counters (requests, failures, redundancy).
func (c *Client) Stats() Stats { return c.handler.Stats() }

// ControllerStats returns the adaptive budget controller's counters; ok is
// false when ClientConfig.AdaptiveBudget was not set.
func (c *Client) ControllerStats() (s ControllerStats, ok bool) {
	return c.handler.ControllerStats()
}

// DigestStats returns the digest-fabric counters; ok is false when
// ClientConfig.DigestGossip was not set.
func (c *Client) DigestStats() (s GossipStats, ok bool) {
	return c.handler.GossipStats()
}

// ProbesSent returns how many active probes this client has dispatched
// (0 when ClientConfig.ProbeInterval is unset).
func (c *Client) ProbesSent() uint64 { return c.handler.ProbesSent() }

// OrderedStats counts one ordered client's sequencer activity; zero when
// ClientConfig.Ordered is unset.
type OrderedStats struct {
	// StampsIssued is the highest logical timestamp assigned so far.
	StampsIssued uint64
	// RefillsServed is how many stored frames were re-sent to replicas that
	// reported stamp gaps.
	RefillsServed uint64
	// RefillsPruned is how many gap-refill requests were answered Pruned
	// (the range had left the bounded frame log, forcing the replica into a
	// full state transfer).
	RefillsPruned uint64
}

// OrderedStats returns the client's ordered-mode counters.
func (c *Client) OrderedStats() OrderedStats {
	return OrderedStats{
		StampsIssued:  c.handler.StampsIssued(),
		RefillsServed: c.handler.RefillsServed(),
		RefillsPruned: c.handler.RefillsPruned(),
	}
}

// Addr returns the client's own transport address (its gossip peering
// identity on the cluster's network).
func (c *Client) Addr() string { return string(c.addr) }

// Close releases the client.
func (c *Client) Close() {
	if c.cluster != nil {
		c.cluster.mu.Lock()
		delete(c.cluster.clients, c)
		c.cluster.mu.Unlock()
	}
	c.handler.Close()
}

// Replica is a running server replica handle.
type Replica struct {
	srv *server.Replica
}

// ID returns the replica's identity.
func (r *Replica) ID() ReplicaID { return r.srv.ID() }

// Addr returns the replica's transport address.
func (r *Replica) Addr() string { return string(r.srv.Addr()) }

// Served returns the number of requests this replica has processed.
func (r *Replica) Served() uint64 { return r.srv.Served() }

// CaughtUp reports whether the replica's state machine is current: true for
// stateless replicas, and for stateful ones that booted fresh or completed a
// state transfer.
func (r *Replica) CaughtUp() bool { return r.srv.CaughtUp() }

// OrderedTail returns how many ordered operations the replica has applied
// (0 for stateless replicas).
func (r *Replica) OrderedTail() uint64 { return r.srv.OrderedTail() }

// StateTransfers returns how many inbound state transfers this replica has
// completed (0 for stateless replicas).
func (r *Replica) StateTransfers() uint64 { return r.srv.StateTransfers() }

// Stop terminates the replica (simulating a crash from the cluster's
// perspective: clients prune it after failure detection).
func (r *Replica) Stop() { r.srv.Stop() }

// Cluster is a replicated service running on a shared transport, plus the
// bookkeeping to mint clients against it. It is the in-process convenience
// layer; production deployments wire cmd/aqua-server and cmd/aqua-client
// across machines instead.
type Cluster struct {
	service wire.Service
	network transport.Network
	inmem   *transport.InMem // non-nil when we own an in-memory network

	mu        sync.Mutex
	replicas  map[ReplicaID]*Replica
	clients   map[*Client]bool
	gateways  map[*Gateway]*gateway.TimingFaultHandler // this cluster's handler in each multi-service gateway
	nextID    int
	viewNum   uint64
	handler   Handler
	smFactory func() StateMachine // non-nil = ordered (stateful) replicas
	load      stats.DelayDist
	seed      int64
	selfHeal  bool
	lifecycle LifecycleConfig // default for clients minted from this cluster
	faults    *FaultInjector
	manager   *proteus.Manager
	reg       *metrics.Registry // nil = process-wide default
	closed    bool
}

// membershipLocked builds the current replica address table. Caller holds
// c.mu.
func (c *Cluster) membershipLocked() map[wire.ReplicaID]transport.Addr {
	m := make(map[wire.ReplicaID]transport.Addr, len(c.replicas))
	for id, r := range c.replicas {
		m[id] = transport.Addr(r.Addr())
	}
	return m
}

// notifyClients pushes the current membership to every live client and
// every registered multi-service gateway handler, as the group-communication
// layer would after a view change, and feeds the dependability manager when
// self-healing is on. On stateful clusters the replicas get the same view as
// a peer table, so a recovering replica can pick a state-transfer source.
func (c *Cluster) notifyClients() {
	c.mu.Lock()
	m := c.membershipLocked()
	clients := make([]*Client, 0, len(c.clients))
	for cl := range c.clients {
		clients = append(clients, cl)
	}
	handlers := make([]*gateway.TimingFaultHandler, 0, len(c.gateways))
	for _, h := range c.gateways {
		handlers = append(handlers, h)
	}
	var servers []*server.Replica
	if c.smFactory != nil {
		servers = make([]*server.Replica, 0, len(c.replicas))
		for _, r := range c.replicas {
			servers = append(servers, r.srv)
		}
	}
	c.viewNum++
	view := group.View{Number: c.viewNum, Members: make([]wire.ReplicaID, 0, len(m))}
	for id := range m {
		view.Members = append(view.Members, id)
	}
	mgr := c.manager
	c.mu.Unlock()
	for _, cl := range clients {
		cl.handler.UpdateMembership(m)
	}
	for _, h := range handlers {
		h.UpdateMembership(m)
	}
	for _, srv := range servers {
		srv.UpdatePeers(m)
	}
	if mgr != nil {
		mgr.ObserveView(view)
	}
}

// ClusterOption configures NewCluster.
type ClusterOption func(*Cluster)

// WithSimulatedLoad makes every replica delay each response by a draw from
// Normal(mean, sigma), reproducing the paper's simulated server load.
func WithSimulatedLoad(mean, sigma time.Duration) ClusterOption {
	return func(c *Cluster) { c.load = stats.Normal{Mu: mean, Sigma: sigma} }
}

// WithLoadDistribution sets an arbitrary artificial service-delay
// distribution for the replicas.
func WithLoadDistribution(d stats.DelayDist) ClusterOption {
	return func(c *Cluster) { c.load = d }
}

// WithTCP runs the cluster over TCP loopback sockets instead of the
// in-memory transport.
func WithTCP() ClusterOption {
	return func(c *Cluster) {
		c.network = transport.NewTCP()
		c.inmem = nil
	}
}

// WithSeed seeds the replicas' load injectors (runs with equal seeds and
// the in-memory transport are reproducible).
func WithSeed(seed int64) ClusterOption {
	return func(c *Cluster) { c.seed = seed }
}

// WithSharedNetwork places this cluster on the same transport network as
// other, so one Gateway can carry handlers for both services. Both clusters
// must then be closed independently; the network is owned by other.
func WithSharedNetwork(other *Cluster) ClusterOption {
	return func(c *Cluster) {
		c.network = other.network
		c.inmem = nil // not ours to close
	}
}

// WithMetrics directs every instrument of this cluster — its transport,
// every client handler minted from it, their schedulers and probers — to reg
// instead of the process-wide default registry. Isolates concurrent clusters
// (tests, multi-tenant processes) from each other's counters.
func WithMetrics(reg *MetricsRegistry) ClusterOption {
	return func(c *Cluster) { c.reg = reg }
}

// WithSelfHealing keeps the replica pool at its initial size: a Proteus
// dependability manager observes membership and starts a fresh replica
// whenever one crash-stops (§2: Proteus "manages the replication level").
// With a lifecycle-enabled client (WithLifecycle or ClientConfig.Lifecycle),
// the manager also rejuvenates quarantined replicas: the sick member is
// retired and the resulting deficit boots a replacement, subject to the
// manager's restart backoff and storm cap.
func WithSelfHealing() ClusterOption {
	return func(c *Cluster) { c.selfHeal = true }
}

// WithStateMachine makes the cluster stateful: every replica runs its own
// instance from factory as an ordered-mode state machine. Replicas joining a
// non-empty pool (including Proteus replacements after a crash or
// rejuvenation) start recovering and pull a snapshot + log suffix from a
// caught-up peer before they report CaughtUp. Call through clients created
// with ClientConfig.Ordered; unordered calls still work but bypass the state
// machine.
func WithStateMachine(factory func() StateMachine) ClusterOption {
	return func(c *Cluster) { c.smFactory = factory }
}

// WithLifecycle sets the default LifecycleConfig for every client minted
// from this cluster (a client's own ClientConfig.Lifecycle, when enabled,
// takes precedence). Pair with ClientConfig.ProbeInterval so probation
// replicas are warmed back into selection, and with WithSelfHealing to
// close the loop with rejuvenation.
func WithLifecycle(cfg LifecycleConfig) ClusterOption {
	cfg.Enabled = true
	return func(c *Cluster) { c.lifecycle = cfg }
}

// Addr is a transport address, re-exported for fault-injection rules. Get a
// replica's address from Replica.Addr().
type Addr = transport.Addr

// AnyAddr is the wildcard side of a fault-injection link rule.
const AnyAddr = transport.Any

// FaultPolicy describes the faults injected on one link: probabilistic
// drop, added delay, duplication, reordering, or a full partition.
type FaultPolicy = transport.FaultPolicy

// FaultInjector is the runtime handle for flipping faults on a cluster's
// transport mid-run. Create with NewFaultInjector, attach with
// WithFaultInjection, and adjust from any goroutine while traffic flows.
type FaultInjector = transport.Injector

// NewFaultInjector returns an injector with no faults configured. The seed
// drives every probabilistic fault decision, so fault sequences over the
// in-memory transport are reproducible.
func NewFaultInjector(seed int64) *FaultInjector { return transport.NewInjector(seed) }

// WithFaultInjection wraps the cluster's transport (in-memory or TCP) in a
// fault-injection layer driven by inj: every message between clients and
// replicas is subject to the injector's per-link policies. This reproduces
// the paper's timing-fault environment — overloaded links, lost messages,
// unreachable replicas — on demand; see DESIGN.md for the mapping to §5.4.
//
// Clusters that must share one gateway (WithSharedNetwork) need to share
// the same injector-wrapped network, so apply fault injection to the
// network-owning cluster only.
func WithFaultInjection(inj *FaultInjector) ClusterOption {
	return func(c *Cluster) { c.faults = inj }
}

// FaultInjector returns the injector attached with WithFaultInjection, or
// nil when fault injection is off.
func (c *Cluster) FaultInjector() *FaultInjector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// NewCluster starts n replicas of service running handler.
func NewCluster(service Service, n int, handler Handler, opts ...ClusterOption) (*Cluster, error) {
	if service == "" {
		return nil, fmt.Errorf("aqua: service name is required")
	}
	if n <= 0 {
		return nil, fmt.Errorf("aqua: need at least one replica, got %d", n)
	}
	if handler == nil {
		return nil, fmt.Errorf("aqua: handler is required")
	}
	inmem := transport.NewInMem()
	c := &Cluster{
		service:  service,
		network:  inmem,
		inmem:    inmem,
		replicas: make(map[ReplicaID]*Replica),
		clients:  make(map[*Client]bool),
		gateways: make(map[*Gateway]*gateway.TimingFaultHandler),
		handler:  handler,
		seed:     1,
	}
	for _, o := range opts {
		o(c)
	}
	if c.reg != nil {
		// Rebind the transport to the custom registry. Nothing has listened
		// yet, so the network picked by the options can be swapped wholesale;
		// shared networks stay with their owner's registry.
		if c.inmem != nil {
			_ = c.inmem.Close()
			c.inmem = transport.NewInMem(transport.WithMetrics(c.reg))
			c.network = c.inmem
		} else if _, ok := c.network.(transport.TCP); ok {
			c.network = transport.NewTCPWithMetrics(c.reg)
		}
	}
	if c.faults != nil {
		// Wrap whatever transport the options picked, so fault injection
		// composes with WithTCP and WithSharedNetwork alike.
		c.network = transport.NewFaulty(c.network, c.faults)
	}
	for i := 0; i < n; i++ {
		if _, err := c.AddReplica(); err != nil {
			c.Close()
			return nil, err
		}
	}
	if c.selfHeal {
		mgr, err := proteus.NewManager(proteus.Policy{
			Service:          service,
			ReplicationLevel: n,
			Factory: func(wire.ReplicaID) (wire.ReplicaID, func(), error) {
				r, err := c.AddReplica()
				if err != nil {
					return "", nil, err
				}
				// Stop through the cluster so the membership table and every
				// client's view stay in step with the kill.
				id := r.ID()
				return id, func() { _ = c.StopReplica(id) }, nil
			},
			// Rejuvenation: quarantined replicas the manager didn't start
			// (the initial pool) are retired through the cluster too.
			Retire:        func(id wire.ReplicaID) { _ = c.StopReplica(id) },
			CheckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.mu.Lock()
		c.manager = mgr
		c.mu.Unlock()
		c.notifyClients() // seed the manager with the initial view
		mgr.Run()
	}
	return c, nil
}

// Metrics snapshots the cluster's metrics registry — the one given with
// WithMetrics, or the process-wide default.
func (c *Cluster) Metrics() MetricsSnapshot {
	return metrics.OrDefault(c.reg).Snapshot()
}

// MetricsRegistry returns the registry this cluster's components report to,
// for serving over HTTP (ServeMetrics) or creating custom instruments.
func (c *Cluster) MetricsRegistry() *MetricsRegistry {
	return metrics.OrDefault(c.reg)
}

// Manager returns the dependability manager, or nil when self-healing is
// off.
func (c *Cluster) Manager() *proteus.Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manager
}

// AddReplica starts one more replica and returns its handle.
func (c *Cluster) AddReplica() (*Replica, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("aqua: cluster closed")
	}
	c.nextID++
	id := wire.ReplicaID(fmt.Sprintf("%s-r%d", c.service, c.nextID))
	seed := c.seed + int64(c.nextID)
	// A stateful replica joining a non-empty pool must recover: its state
	// machine is behind whatever history the incumbents have applied, so it
	// pulls a snapshot from a peer before reporting CaughtUp. The first
	// replica of a fresh cluster boots with nothing to recover from.
	recovering := c.smFactory != nil && len(c.replicas) > 0
	c.mu.Unlock()

	ep, err := c.listen(string(id))
	if err != nil {
		return nil, fmt.Errorf("aqua: replica endpoint: %w", err)
	}
	var sm server.StateMachine
	if c.smFactory != nil {
		sm = c.smFactory()
	}
	srv, err := server.Start(ep, server.Config{
		ID:           id,
		Service:      c.service,
		Handler:      c.handler,
		StateMachine: sm,
		Recovering:   recovering,
		LoadDelay:    c.load,
		Seed:         seed,
	})
	if err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("aqua: starting replica: %w", err)
	}
	r := &Replica{srv: srv}
	c.mu.Lock()
	if c.closed {
		// Close ran while the lock was dropped to start the server: this
		// replica must not outlive the cluster, and must not be re-inserted
		// into the membership table Close already emptied.
		c.mu.Unlock()
		srv.Stop()
		return nil, fmt.Errorf("aqua: cluster closed")
	}
	c.replicas[id] = r
	c.mu.Unlock()
	c.notifyClients()
	return r, nil
}

// listen allocates an endpoint: named on the in-memory network, an
// ephemeral loopback port on TCP.
func (c *Cluster) listen(name string) (transport.Endpoint, error) {
	addr := transport.Addr(name)
	if !isInMemBacked(c.network) {
		addr = "127.0.0.1:0"
	}
	return c.network.Listen(addr)
}

// isInMemBacked reports whether n bottoms out at the in-memory transport,
// unwrapping any fault-injection layers on the way down.
func isInMemBacked(n transport.Network) bool {
	for {
		switch v := n.(type) {
		case *transport.InMem:
			return true
		case *transport.Faulty:
			n = v.Inner()
		default:
			return false
		}
	}
}

// Replicas returns handles for the currently running replicas.
func (c *Cluster) Replicas() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		out = append(out, r)
	}
	return out
}

// StopReplica crash-stops the named replica. The clients' deadline
// machinery and redundancy absorb in-flight losses.
func (c *Cluster) StopReplica(id ReplicaID) error {
	c.mu.Lock()
	r, ok := c.replicas[id]
	if ok {
		delete(c.replicas, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("aqua: unknown replica %q", id)
	}
	r.Stop()
	c.notifyClients()
	return nil
}

// lifecycleFor resolves a client's effective lifecycle configuration: the
// client's own when enabled, else the cluster default (WithLifecycle). When
// enabled on a self-healing cluster, the OnSuspect hook is chained so
// quarantine transitions reach the dependability manager — the §5.4 loop:
// detect → quarantine → retire → replacement → probation re-admission.
func (c *Cluster) lifecycleFor(cfg LifecycleConfig) LifecycleConfig {
	if !cfg.Enabled {
		cfg = c.lifecycle
	}
	if !cfg.Enabled {
		return cfg
	}
	user := cfg.OnSuspect
	cfg.OnSuspect = func(r SuspectReport) {
		if user != nil {
			user(r)
		}
		if r.To != HealthQuarantined {
			return
		}
		if mgr := c.Manager(); mgr != nil {
			mgr.Quarantine(r.Replica)
		}
	}
	return cfg
}

// lifecycleForOrdered resolves a client's lifecycle configuration and, for an
// ordered client of a stateful cluster, arms the state-transfer re-admission
// gate: timing samples alone no longer promote Probation→Active — the
// replica's reports must also claim a caught-up state machine.
func (c *Cluster) lifecycleForOrdered(cfg ClientConfig) LifecycleConfig {
	lc := c.lifecycleFor(cfg.Lifecycle)
	if lc.Enabled && cfg.Ordered && c.smFactory != nil {
		lc.RequireStateTransfer = true
	}
	return lc
}

// NewClient mints a client of this cluster's service.
// strategyFor resolves the effective selection strategy: an explicit
// Strategy wins; with an adaptive budget configured the default is
// BudgetedSelection (the controller only acts through a budget-aware
// strategy); otherwise nil keeps the handler's DynamicSelection default.
func strategyFor(cfg ClientConfig) Strategy {
	if cfg.Strategy == nil && cfg.AdaptiveBudget != nil {
		return BudgetedSelection()
	}
	return cfg.Strategy
}

// controllerFor builds the client's adaptive budget controller, defaulting
// the budget ceiling to the pool size observed at creation.
func controllerFor(cfg ClientConfig, pool int) *core.AdaptiveBudget {
	if cfg.AdaptiveBudget == nil {
		return nil
	}
	ac := *cfg.AdaptiveBudget
	if ac.MaxK <= 0 {
		ac.MaxK = pool
	}
	return core.NewAdaptiveBudget(ac)
}

// gossipFor translates the public gossip configuration for the handler.
// Peers start empty; ConnectGossip wires the mesh once the fleet exists.
func gossipFor(cfg ClientConfig) *gateway.GossipConfig {
	if cfg.DigestGossip == nil || cfg.DigestGossip.Interval <= 0 {
		return nil
	}
	return &gateway.GossipConfig{
		Interval:  cfg.DigestGossip.Interval,
		Bootstrap: cfg.DigestGossip.Bootstrap,
	}
}

func (c *Cluster) NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("client-%d", time.Now().UnixNano())
	}
	c.mu.Lock()
	static := c.membershipLocked()
	c.mu.Unlock()

	ep, err := c.listen("client:" + cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("aqua: client endpoint: %w", err)
	}
	h, err := gateway.NewTimingFaultHandler(ep, gateway.Config{
		Client:             wire.ClientID(cfg.Name),
		Service:            c.service,
		QoS:                cfg.QoS,
		Strategy:           strategyFor(cfg),
		WindowSize:         cfg.WindowSize,
		CompensateOverhead: cfg.CompensateOverhead,
		OnViolation:        cfg.OnViolation,
		ProbeInterval:      cfg.ProbeInterval,
		StalenessBound:     cfg.StalenessBound,
		MaxWait:            cfg.MaxWait,
		Overload:           cfg.Overload,
		ShedRetryDelay:     cfg.ShedRetryDelay,
		Lifecycle:          c.lifecycleForOrdered(cfg),
		Ordered:            cfg.Ordered,
		CancelOnFirstReply: cfg.CancelOnFirstReply,
		Controller:         controllerFor(cfg, len(static)),
		Gossip:             gossipFor(cfg),
		NoPerfSubscription: cfg.DisablePerfSubscription,
		StaticReplicas:     static,
		Metrics:            c.reg,
	})
	if err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("aqua: client handler: %w", err)
	}
	client := &Client{handler: h, cluster: c, addr: ep.Addr()}
	c.mu.Lock()
	c.clients[client] = true
	c.mu.Unlock()
	return client, nil
}

// Close stops every replica and, when owned, the in-memory network.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	replicas := make([]*Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		replicas = append(replicas, r)
	}
	c.replicas = make(map[ReplicaID]*Replica)
	mgr := c.manager
	c.manager = nil
	c.mu.Unlock()

	if mgr != nil {
		// Stop reconciliation first so the manager doesn't replace the
		// replicas being shut down.
		mgr.Stop()
	}
	for _, r := range replicas {
		r.Stop()
	}
	if c.inmem != nil {
		_ = c.inmem.Close()
	}
}

// Gateway is a client gateway hosting one timing fault handler per service,
// as in the original AQuA architecture where "a client that is communicating
// with multiple servers would have multiple handlers loaded in its gateway".
// Create with NewGateway against one or more clusters.
type Gateway struct {
	mg       *gateway.MultiGateway
	clusters map[Service]*Cluster
}

// NewGateway creates a multi-service gateway for a client. Pass the
// clusters whose services the client will call; each gets its own handler
// with its own QoS.
func NewGateway(name string, configs map[*Cluster]ClientConfig) (*Gateway, error) {
	if name == "" {
		return nil, fmt.Errorf("aqua: gateway name is required")
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("aqua: at least one cluster is required")
	}
	// All clusters must share a transport for a single shared endpoint.
	var first *Cluster
	for c := range configs {
		if first == nil {
			first = c
			continue
		}
		if c.network != first.network {
			return nil, fmt.Errorf("aqua: clusters on different networks cannot share a gateway")
		}
	}
	ep, err := first.listen("gateway:" + name)
	if err != nil {
		return nil, fmt.Errorf("aqua: gateway endpoint: %w", err)
	}
	mg, err := gateway.NewMultiGateway(ep, wire.ClientID(name))
	if err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("aqua: %w", err)
	}
	g := &Gateway{mg: mg, clusters: make(map[Service]*Cluster, len(configs))}
	for c, cfg := range configs {
		c.mu.Lock()
		static := c.membershipLocked()
		c.mu.Unlock()
		h, err := mg.LoadHandler(gateway.Config{
			Service:            c.service,
			QoS:                cfg.QoS,
			Strategy:           strategyFor(cfg),
			WindowSize:         cfg.WindowSize,
			CompensateOverhead: cfg.CompensateOverhead,
			OnViolation:        cfg.OnViolation,
			StalenessBound:     cfg.StalenessBound,
			Overload:           cfg.Overload,
			ShedRetryDelay:     cfg.ShedRetryDelay,
			Lifecycle:          c.lifecycleForOrdered(cfg),
			Ordered:            cfg.Ordered,
			CancelOnFirstReply: cfg.CancelOnFirstReply,
			Controller:         controllerFor(cfg, len(static)),
			Gossip:             gossipFor(cfg),
			NoPerfSubscription: cfg.DisablePerfSubscription,
			StaticReplicas:     static,
			Metrics:            c.reg,
		})
		if err != nil {
			g.unregister()
			mg.Close()
			return nil, fmt.Errorf("aqua: loading handler for %q: %w", c.service, err)
		}
		// Register the handler for view changes — AddReplica/StopReplica
		// must reach it like any single-service client — and re-push the
		// membership to cover a change that raced the snapshot above.
		c.mu.Lock()
		c.gateways[g] = h
		current := c.membershipLocked()
		c.mu.Unlock()
		h.UpdateMembership(current)
		g.clusters[c.service] = c
	}
	return g, nil
}

// unregister detaches the gateway's handlers from view-change delivery.
func (g *Gateway) unregister() {
	for _, c := range g.clusters {
		c.mu.Lock()
		delete(c.gateways, g)
		c.mu.Unlock()
	}
}

// Call invokes a service through its loaded handler.
func (g *Gateway) Call(ctx context.Context, service Service, method string, payload []byte) ([]byte, error) {
	return g.mg.Call(ctx, service, method, payload)
}

// Stats returns the per-service handler counters.
func (g *Gateway) Stats(service Service) (Stats, error) {
	h, ok := g.mg.Handler(service)
	if !ok {
		return Stats{}, fmt.Errorf("aqua: no handler for %q", service)
	}
	return h.Stats(), nil
}

// Renegotiate replaces one service's QoS specification at runtime.
func (g *Gateway) Renegotiate(service Service, q QoS) error {
	h, ok := g.mg.Handler(service)
	if !ok {
		return fmt.Errorf("aqua: no handler for %q", service)
	}
	return h.Renegotiate(q)
}

// Close releases the gateway and all its handlers.
func (g *Gateway) Close() {
	g.unregister()
	g.mg.Close()
}

// PassiveClient is a client using AQuA's passive-replication handler:
// requests go to a single primary with failover on timeout, the
// crash-tolerance baseline the timing fault handler improves on.
type PassiveClient struct {
	handler *gateway.PassiveHandler
}

// NewPassiveClient mints a passive-replication client of the cluster's
// service. attemptTimeout is how long the primary may stay silent before
// the handler fails over to the next replica.
func (c *Cluster) NewPassiveClient(name string, attemptTimeout time.Duration) (*PassiveClient, error) {
	if name == "" {
		return nil, fmt.Errorf("aqua: client name is required")
	}
	c.mu.Lock()
	static := c.membershipLocked()
	c.mu.Unlock()
	ep, err := c.listen("client:" + name)
	if err != nil {
		return nil, fmt.Errorf("aqua: client endpoint: %w", err)
	}
	h, err := gateway.NewPassiveHandler(ep, gateway.PassiveConfig{
		Client:         wire.ClientID(name),
		Service:        c.service,
		AttemptTimeout: attemptTimeout,
		StaticReplicas: static,
	})
	if err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("aqua: passive handler: %w", err)
	}
	return &PassiveClient{handler: h}, nil
}

// Call invokes the service on the primary, failing over on timeout.
func (p *PassiveClient) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	return p.handler.Call(ctx, method, payload)
}

// Primary returns the replica currently treated as primary.
func (p *PassiveClient) Primary() (ReplicaID, bool) { return p.handler.Primary() }

// Close releases the client.
func (p *PassiveClient) Close() { p.handler.Close() }
