// Benchmarks regenerating the paper's evaluation, one per reported result
// (see DESIGN.md's experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// The Fig3 benches time exactly what the paper's Figure 3 plots — one
// selection-algorithm invocation (distribution computation + Algorithm 1) —
// across the same replica-count × window-size grid. The Fig4/Fig5 benches
// execute a full simulated two-client run per iteration and report the
// figure metric through b.ReportMetric. E0 measures the end-to-end
// request floor through the real handler/server path.
package aqua_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aqua"
	"aqua/internal/experiment"
	"aqua/internal/model"
	"aqua/internal/repository"
	"aqua/internal/selection"
	"aqua/internal/sim"
	"aqua/internal/stats"
	"aqua/internal/wire"
)

// BenchmarkE0MinResponseTime measures the minimum-request response-time
// floor (§6 text: ~3.5 ms on the paper's CORBA testbed).
func BenchmarkE0MinResponseTime(b *testing.B) {
	cluster, err := aqua.NewCluster("bench-e0", 1,
		func(string, []byte) ([]byte, error) { return []byte{1}, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.NewClient(aqua.ClientConfig{
		Name: "bench-client",
		QoS:  aqua.QoS{Deadline: time.Second, MinProbability: 0},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	payload := []byte{0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, "", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3SelectionOverhead times one scheduler decision — the
// distribution computation plus Algorithm 1 — on the paper's grid of
// replica counts (2..8) and window sizes (5, 10, 20).
func BenchmarkFig3SelectionOverhead(b *testing.B) {
	for _, l := range []int{5, 10, 20} {
		for _, n := range []int{2, 4, 6, 8} {
			b.Run(fmt.Sprintf("l=%d/n=%d", l, n), func(b *testing.B) {
				rows, err := experiment.RunFig3(experiment.Fig3Config{
					ReplicaCounts: []int{n},
					WindowSizes:   []int{l},
					Iterations:    b.N,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows[0].TotalOvhd)/float64(time.Microsecond), "us/select")
				b.ReportMetric(rows[0].DistFraction, "dist_frac")
			})
		}
	}
}

// fig45Point runs one simulated Figure 4/5 sweep point and reports both
// figure metrics for the swept client.
func fig45Point(b *testing.B, deadline time.Duration, pc float64) {
	b.Helper()
	var selSum, failSum float64
	for i := 0; i < b.N; i++ {
		replicas := make([]sim.ReplicaSpec, 7)
		for j := range replicas {
			replicas[j] = sim.ReplicaSpec{
				Service: stats.Normal{Mu: 100 * time.Millisecond, Sigma: 50 * time.Millisecond},
			}
		}
		res, err := sim.Run(sim.Scenario{
			Replicas: replicas,
			Clients: []sim.ClientSpec{
				{QoS: wire.QoS{Deadline: 200 * time.Millisecond, MinProbability: 0}, Requests: 50, Think: time.Second},
				{QoS: wire.QoS{Deadline: deadline, MinProbability: pc}, Requests: 50, Think: time.Second},
			},
			Network: sim.NetworkModel{Base: stats.Constant{Delay: 500 * time.Microsecond}},
			Seed:    42 + int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		selSum += res.Clients[1].MeanSelected()
		failSum += res.Clients[1].FailureProbability()
	}
	b.ReportMetric(selSum/float64(b.N), "replicas_selected")
	b.ReportMetric(failSum/float64(b.N), "failure_prob")
}

// BenchmarkFig4ReplicasSelected regenerates Figure 4: the mean redundancy
// level per (deadline, Pc) point.
func BenchmarkFig4ReplicasSelected(b *testing.B) {
	for _, pc := range []float64{0.9, 0.5, 0.0} {
		for _, dl := range []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 200 * time.Millisecond} {
			b.Run(fmt.Sprintf("Pc=%.1f/t=%v", pc, dl), func(b *testing.B) {
				fig45Point(b, dl, pc)
			})
		}
	}
}

// BenchmarkFig5TimingFailures regenerates Figure 5: the observed timing
// failure probability per (deadline, Pc) point. Same runs as Figure 4; the
// separate benchmark matches the paper's figure-per-metric layout.
func BenchmarkFig5TimingFailures(b *testing.B) {
	for _, pc := range []float64{0.9, 0.5, 0.0} {
		b.Run(fmt.Sprintf("Pc=%.1f/t=100ms", pc), func(b *testing.B) {
			fig45Point(b, 100*time.Millisecond, pc)
		})
	}
}

// BenchmarkAblationStrategies compares the per-decision cost of Algorithm 1
// against the baselines (A1's compute-cost side).
func BenchmarkAblationStrategies(b *testing.B) {
	pred := model.NewPredictor()
	rows, err := experiment.RunFig3(experiment.Fig3Config{
		ReplicaCounts: []int{7}, WindowSizes: []int{5}, Iterations: 1, Seed: 1,
	})
	if err != nil || len(rows) == 0 {
		b.Fatalf("warmup: %v", err)
	}
	_ = pred
	strategies := []selection.Strategy{
		selection.NewDynamic(),
		selection.NewDynamicMulti(2),
		selection.SingleBest{},
		selection.FixedK{K: 3},
		selection.All{},
	}
	table := syntheticTable(7)
	qos := wire.QoS{Deadline: 150 * time.Millisecond, MinProbability: 0.9}
	for _, s := range strategies {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := s.Select(selection.Input{Table: table, QoS: qos})
				if len(res.Selected) == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}

// predictBenchRepo builds the PR 1 benchmark point — 8 replicas, window
// l=100 — with mixed service/queue distributions and gateway delays.
func predictBenchRepo() *repository.Repository {
	rng := stats.NewRand(1)
	repo := repository.New(repository.WithWindowSize(100))
	service := stats.Normal{Mu: 40 * time.Millisecond, Sigma: 25 * time.Millisecond}
	queue := stats.Exponential{MeanDelay: 15 * time.Millisecond}
	for i := 0; i < 8; i++ {
		id := wire.ReplicaID(fmt.Sprintf("replica-%02d", i))
		repo.AddReplica(id)
		for j := 0; j < 100; j++ {
			repo.RecordPerf(id, "", wire.PerfReport{
				ServiceTime: service.Sample(rng),
				QueueDelay:  queue.Sample(rng),
			}, time.Now())
		}
		repo.RecordGatewayDelay(id, time.Duration(rng.Intn(5000))*time.Microsecond)
	}
	return repo
}

// benchmarkPredict times one full probability table (F_Ri(t) for all 8
// replicas at the 150ms deadline) — the distribution-computation share of the
// paper's δ.
func benchmarkPredict(b *testing.B, p *model.Predictor, flush bool) {
	b.Helper()
	snaps := predictBenchRepo().Snapshot("")
	deadline := 150 * time.Millisecond
	if _, _, err := p.ProbabilityTable(snaps, deadline); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if flush {
			p.FlushCache()
		}
		table, _, err := p.ProbabilityTable(snaps, deadline)
		if err != nil {
			b.Fatal(err)
		}
		if len(table) != 8 {
			b.Fatalf("predicted %d of 8 replicas", len(table))
		}
	}
}

// BenchmarkPredictReference is the before side of the PR 1 δ optimization:
// the paper's map-based formulation (sort + map convolution per replica).
func BenchmarkPredictReference(b *testing.B) {
	benchmarkPredict(b, model.NewPredictor(model.WithReferencePath()), false)
}

// BenchmarkPredictFastCold measures the optimized path when every window
// changed since the last request: histogram-fed dense convolution, no memo
// hits.
func BenchmarkPredictFastCold(b *testing.B) {
	benchmarkPredict(b, model.NewPredictor(), true)
}

// BenchmarkPredictFastCached measures back-to-back requests against
// unchanged windows: pure memoized CDF-table lookups.
func BenchmarkPredictFastCached(b *testing.B) {
	benchmarkPredict(b, model.NewPredictor(), false)
}

// syntheticTable builds a prediction table without repository plumbing.
func syntheticTable(n int) []model.ReplicaProbability {
	table := make([]model.ReplicaProbability, n)
	for i := range table {
		table[i] = model.ReplicaProbability{
			Probability: 0.3 + 0.6*float64(i)/float64(n),
		}
		table[i].Snapshot.ID = wire.ReplicaID(fmt.Sprintf("replica-%02d", i))
		table[i].Snapshot.HasHistory = true
	}
	return table
}
