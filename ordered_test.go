package aqua_test

// End-to-end tests of the ordered service mode through the public API:
// stamped calls against a stateful cluster, prefix agreement across replica
// state machines, and the full robustness loop — crash, Proteus replacement,
// state transfer, re-admission, gap refill.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aqua"
)

// appendSM is a state machine whose state IS the applied sequence, so the
// tests can assert prefix agreement directly.
type appendSM struct {
	mu  sync.Mutex
	ops []string
}

func (m *appendSM) Apply(method string, payload []byte) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = append(m.ops, method+":"+string(payload))
	return []byte(fmt.Sprintf("ok-%d", len(m.ops))), nil
}

func (m *appendSM) Snapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []byte(strings.Join(m.ops, "\n")), nil
}

func (m *appendSM) Restore(snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(snapshot) == 0 {
		m.ops = nil
		return nil
	}
	m.ops = strings.Split(string(snapshot), "\n")
	return nil
}

func (m *appendSM) history() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.ops...)
}

// smTracker mints one appendSM per replica and remembers them all.
type smTracker struct {
	mu  sync.Mutex
	sms []*appendSM
}

func (tr *smTracker) factory() aqua.StateMachine {
	sm := &appendSM{}
	tr.mu.Lock()
	tr.sms = append(tr.sms, sm)
	tr.mu.Unlock()
	return sm
}

func (tr *smTracker) all() []*appendSM {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*appendSM(nil), tr.sms...)
}

// assertPrefixAgreement checks that every machine's history is a prefix of
// the longest one (a crashed machine may be behind; none may diverge) and
// that at least want machines hold the full history of length total.
func assertPrefixAgreement(t *testing.T, sms []*appendSM, total, want int) {
	t.Helper()
	var longest []string
	for _, sm := range sms {
		if h := sm.history(); len(h) > len(longest) {
			longest = h
		}
	}
	if len(longest) != total {
		t.Errorf("longest history = %d ops, want %d", len(longest), total)
	}
	full := 0
	for i, sm := range sms {
		h := sm.history()
		for j, op := range h {
			if op != longest[j] {
				t.Fatalf("machine %d diverges at op %d: %q != %q", i, j, op, longest[j])
			}
		}
		if len(h) == len(longest) {
			full++
		}
	}
	if full < want {
		t.Errorf("%d machines hold the full history, want >= %d", full, want)
	}
}

func TestOrderedClusterPrefixAgreement(t *testing.T) {
	tr := &smTracker{}
	c := newTestCluster(t, 3, aqua.WithStateMachine(tr.factory))
	client, err := c.NewClient(aqua.ClientConfig{
		Name:     "ord1",
		QoS:      aqua.QoS{Deadline: 500 * ms, MinProbability: 0.9},
		Strategy: aqua.AllSelection(),
		Ordered:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	const ops = 20
	for i := 0; i < ops; i++ {
		out, err := client.Call(ctx, "set", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatalf("op %d: empty reply", i)
		}
	}
	if got := client.OrderedStats().StampsIssued; got != ops {
		t.Errorf("StampsIssued = %d, want %d", got, ops)
	}
	// With the All strategy every replica saw every stamp; all three must
	// converge on the identical full history.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, r := range c.Replicas() {
			if r.OrderedTail() == ops {
				done++
			}
		}
		if done == 3 {
			break
		}
		time.Sleep(5 * ms)
	}
	assertPrefixAgreement(t, tr.all(), ops, 3)
}

func TestOrderedCancelOnFirstReplyRejected(t *testing.T) {
	tr := &smTracker{}
	c := newTestCluster(t, 2, aqua.WithStateMachine(tr.factory))
	_, err := c.NewClient(aqua.ClientConfig{
		Name:               "bad",
		QoS:                aqua.QoS{Deadline: 500 * ms, MinProbability: 0.9},
		Ordered:            true,
		CancelOnFirstReply: true,
	})
	if err == nil {
		t.Fatal("want error for Ordered + CancelOnFirstReply")
	}
}

// TestOrderedRestartStateTransferAndRejoin drives the full robustness loop:
// a replica of a stateful self-healing cluster crash-stops mid-history, the
// dependability manager boots a replacement, the replacement completes state
// transfer from a caught-up peer (the lifecycle gate holds it in probation
// until then), and after re-admission it is refilled up to the live history.
func TestOrderedRestartStateTransferAndRejoin(t *testing.T) {
	tr := &smTracker{}
	c := newTestCluster(t, 3,
		aqua.WithStateMachine(tr.factory),
		aqua.WithSelfHealing(),
		aqua.WithLifecycle(aqua.LifecycleConfig{ProbationSamples: 2}),
	)
	client, err := c.NewClient(aqua.ClientConfig{
		Name:          "ord2",
		QoS:           aqua.QoS{Deadline: 500 * ms, MinProbability: 0.9},
		Strategy:      aqua.AllSelection(),
		Ordered:       true,
		ProbeInterval: 10 * ms,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	call := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := client.Call(ctx, "set", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	call(10)

	victim := c.Replicas()[0]
	if err := c.StopReplica(victim.ID()); err != nil {
		t.Fatal(err)
	}
	// The manager replaces the crashed replica; the replacement must finish
	// state transfer before it reports CaughtUp.
	var replacement *aqua.Replica
	deadline := time.Now().Add(5 * time.Second)
	for replacement == nil && time.Now().Before(deadline) {
		for _, r := range c.Replicas() {
			if r.ID() != victim.ID() && r.StateTransfers() > 0 && r.CaughtUp() {
				replacement = r
			}
		}
		time.Sleep(5 * ms)
	}
	if replacement == nil {
		t.Fatal("no replacement completed state transfer within 5s")
	}
	if replacement.OrderedTail() < 10 {
		t.Errorf("replacement OrderedTail = %d, want >= 10", replacement.OrderedTail())
	}

	// Keep calling; once probation re-admits the replacement it re-enters
	// selection, discovers its stamp gap, and is refilled to the live tail.
	total := uint64(10)
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && replacement.OrderedTail() < total+1 {
		if _, err := client.Call(ctx, "set", []byte(fmt.Sprintf("v%d", total))); err != nil {
			t.Fatal(err)
		}
		total++
		time.Sleep(5 * ms)
	}
	if got := replacement.OrderedTail(); got <= 10 {
		t.Fatalf("replacement never rejoined the ordered stream: tail %d after %d ops", got, total)
	}
	// Every machine's history must be a prefix of the longest; the crashed
	// one is allowed to be behind, at least the two survivors must be full.
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, r := range c.Replicas() {
			if r.OrderedTail() == total {
				done++
			}
		}
		if done >= 2 {
			break
		}
		time.Sleep(5 * ms)
	}
	assertPrefixAgreement(t, tr.all(), int(total), 2)
}
