# Development targets for the AQuA timing-fault reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments quick-experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure and ablation (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/aqua-exp -exp all | tee results_all.txt

quick-experiments:
	$(GO) run ./cmd/aqua-exp -exp all -quick

# Short fuzzing pass over the wire codec.
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 20s
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 20s

clean:
	$(GO) clean -testcache
