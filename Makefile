# Development targets for the AQuA timing-fault reproduction.

GO ?= go

.PHONY: all check build vet test race bench predict-bench bench-throughput check-throughput experiments quick-experiments faults a13 a14 a15 a16 a17 a18 race-lifecycle metrics-smoke fuzz clean

all: build vet test

# Full gate: compile, static analysis, tests, the race detector, and the
# decision-throughput regression fence.
check: build vet test race check-throughput

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Before/after δ measurement for the prediction fast path (BENCH_predict.json).
predict-bench:
	$(GO) run ./cmd/aqua-exp -exp predict

# Decision-path throughput benchmark: reference vs optimized vs concurrent
# callers; regenerates BENCH_throughput.json.
bench-throughput:
	$(GO) run ./cmd/aqua-exp -exp throughput

# Throughput regression fence: re-measure and compare against the committed
# BENCH_throughput.json (fails if the optimized-vs-reference speedup drops
# below 85% of baseline, the cached path allocates, or the p999 tail
# detaches — see experiment.ThroughputFence). Does not overwrite the
# baseline; use bench-throughput for that.
check-throughput:
	$(GO) run ./cmd/aqua-exp -exp throughput -throughput-against BENCH_throughput.json -throughput-out ""

# Regenerate every paper figure and ablation (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/aqua-exp -exp all | tee results_all.txt

quick-experiments:
	$(GO) run ./cmd/aqua-exp -exp all -quick

# Fault-injection experiment: timely-response rate under injected loss and
# delay spikes, headless with the fixed default seed (see README).
faults:
	$(GO) run ./cmd/aqua-exp -exp faults

# Overload sweep: paper-exact (A12 select-all collapse) vs budgeted
# redundancy + admission control (see EXPERIMENTS.md, a13).
a13:
	$(GO) run ./cmd/aqua-exp -exp a13

# §5.4 chaos soak: deterministic slow/crash/link churn through the full
# lifecycle loop (suspicion → quarantine → rejuvenation → probation).
# Exits non-zero when any recovery bound is missed (see EXPERIMENTS.md, a14).
a14:
	$(GO) run ./cmd/aqua-exp -exp a14

# Shared-intelligence digest fabric: K=4 gossiping gateways vs a single warm
# gateway vs the same fleet without gossip, aggregated over fixed seeds.
# Exits non-zero when the gossiping fleet misses 95% of the single gateway's
# timely fraction, exceeds 1/K of the no-gossip fleet's probe traffic, or the
# per-gateway digest accounting breaks (see EXPERIMENTS.md, a15).
a15:
	$(GO) run ./cmd/aqua-exp -exp a15

# WAN deployment ranking: place a replica budget over regions with bimodal
# (epoch-congested) links and rank placements by timely fraction under the
# point-mass T vs the windowed per-link T distribution. Exits non-zero when
# the windowed T's best placement stops matching or beating the point-mass
# T's best (see EXPERIMENTS.md, a16). Quick mode (1 seed) for CI.
a16:
	$(GO) run ./cmd/aqua-exp -exp a16 -quick

# Heavy-tail cancellation sweep: first-response-wins cancellation and the
# online redundancy controller vs static budgets under Pareto service times.
# Exits non-zero when cancellation stops lifting saturated goodput, the
# controller falls behind the best static budget, or cancelled copies stop
# being reclaimed (see EXPERIMENTS.md, a17).
a17:
	$(GO) run ./cmd/aqua-exp -exp a17

# Ordered-mode lifecycle model check + recovery soak: an exhaustive sweep of
# small real-stack configurations (pool size x crash schedule x injector
# policy) held to prefix agreement, no lost acked writes, and the
# re-admission-implies-caught-up gate, then a virtual-time soak of the
# quarantine -> rejuvenate -> state transfer -> rejoin loop above Pc. Exits
# non-zero on any violation with a one-line repro (see EXPERIMENTS.md, a18).
a18:
	$(GO) run ./cmd/aqua-exp -exp a18

# Race detector focused on the lifecycle-bearing packages (CI runs this in
# addition to the full `make race` inside `make check`). The server and root
# packages carry the ordered-mode runtime (stable delivery, state transfer).
race-lifecycle:
	$(GO) test -race ./internal/core ./internal/repository ./internal/proteus ./internal/gateway ./internal/server .

# Observability smoke: boots a real cluster, drives traffic, serves the
# metrics endpoint, and validates the Prometheus and JSON scrape shapes
# against the scheduler's own counters.
metrics-smoke:
	$(GO) test . -run TestMetricsEndToEnd -count=1 -v

# Short fuzzing pass over the wire codec, including the ordered-mode
# state-transfer frames (StateRequest/StateChunk) on both codecs.
fuzz:
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 20s
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 20s
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzStateTransferRoundTrip -fuzztime 20s

clean:
	$(GO) clean -testcache
